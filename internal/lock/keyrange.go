// Key-range (next-key) locking: the striped alternative to the predicate
// table for phantom prevention.
//
// A predicate lock (§2.3) is a lock on every data item satisfying a
// <search condition> — including phantoms — which is why the predicate
// table lives behind a cross-stripe gate: its conflicts can surface in any
// stripe. Key-range locking finitizes the same coverage instead of
// centralizing it. The existing keys partition the key space into records
// and gaps; a range scan decomposes its protection into per-key *next-key
// fragments*, one per existing key in the predicate's key range (each
// fragment covers its anchor key and the gap below it) plus one supremum
// fragment for the gap above the last anchor. Fragments live in the lock
// table stripe of their anchor key, so:
//
//   - an update or delete of key k checks only the fragments anchored at k
//     — its own stripe, under the stripe latch it already holds;
//   - an insert of a new key j checks the fragments at the smallest anchor
//     at or above j (the gap's owner) and, when granted, copies the
//     covering fragments onto j — InnoDB-style gap-lock inheritance, so
//     coverage survives the key space densifying under a live scan;
//   - disjoint-key item traffic never touches any cross-stripe structure:
//     while no fragment is held or wanted (one atomic counter, the exact
//     predActivity pattern) every fast path is byte-for-byte the striped
//     item path, and even with a live scan, item operations consult only
//     their own stripe. The shared-exclusive gate's exclusive side is
//     never taken on this protocol (Stats.GateAcquires stays zero).
//
// Conflicts are image-refined: a fragment carries its scan's predicate,
// and a write conflicts with it only if the write's before- or after-image
// satisfies that predicate — the same MatchEither rule as the predicate
// table. The refinement is what makes the two protocols behaviorally
// equivalent (same blocking, same waits-for edges, same deadlock victims),
// which the differential fuzzer verifies by running both engine families
// over the same schedules; classic next-key locking without refinement
// would be sound but coarser, blocking non-matching writes into covered
// gaps.
//
// # Storage and allocation discipline
//
// Each stripe keeps its fragments in one slice sorted by anchor key
// (stripe.frags): an install merges one sorted per-stripe key run in a
// single backward pass, the covering-anchor lookup of a gap check is one
// binary search returning a zero-copy view, and a release filters the
// slice in place. All install-time staging — the anchor-snapshot runs, the
// per-stripe buckets, the merged runs, the per-handle location books — is
// recycled through Manager-owned scratch buffers and a rangeHold
// free-list (all under rangeMu, so no pool latch exists), making a
// steady-state scan install O(1) allocations.
//
// # Escalation and fragment GC
//
// Two mechanisms bound the fragment population. With SetEscalation(n), a
// handle that would hold n or more fragments in one stripe collapses them
// into a coarse whole-stripe entry plus one global gap entry — unrefined,
// strictly coarser blocking, the [GLPT] granularity-hierarchy move —
// counted in Stats.Escalations (default off: coarser blocking breaks the
// exact predicate equivalence, so the differential fuzzer runs escalation
// configs oracle-only). With SetRowPresent, drains periodically sweep
// *dead anchors* — anchor keys with no row, no item-lock entry and no
// queued item request, the residue gap inheritance leaves behind under
// insert/delete storms — migrating their fragments to the next live anchor
// (deduplicated per handle), which preserves every covering set exactly:
// a gap position previously owned by the dead anchor is owned by its
// successor afterwards, with a fragment superset whose extra members
// cannot match there (a fragment's predicate never matches outside its
// key bounds, and a nil-row image satisfies no predicate).
//
// Range acquisition is optimistic install-then-validate: fragments are
// installed stripe by stripe under each stripe's latch, then the conflict
// sweep runs once more. A conflicting writer either saw an installed
// fragment under its stripe latch (and waited) or installed its exclusive
// lock before the validation visit (and the validation backs the range
// out to the wait queue) — either way no conflict is missed without any
// global quiescing. Waiting range and gap requests queue in rangeQ under
// rangeMu, a mutex range operations share with each other but that item
// operations only touch when range waiters exist (rangeQLen) — and then
// only after their stripe work, never nested inside a stripe latch.
package lock

import (
	"sort"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// RangeHandle identifies a granted key-range lock for later release.
type RangeHandle int64

// fragment is one stripe-local granule of a key-range lock: Shared
// coverage of its anchor key and the gap below it, refined by the scan's
// predicate. All fragments are Shared — scans are reads; writers never
// install persistent range state (an insert's "exclusive gap lock" is the
// AcquireGap conflict check itself, insert-intention style). An escalated
// coarse entry is a fragment with a nil pred used unrefined.
type fragment struct {
	tx     TxID
	handle RangeHandle
	pred   predicate.P
}

// anchoredFrag is one entry of a stripe's sorted fragment slice: a
// fragment tagged with the anchor key it covers. Entries are ordered by
// anchor; entries with equal anchors are adjacent (their relative order is
// immaterial — conflict sets are aggregated and sorted by TxID).
type anchoredFrag struct {
	anchor data.Key
	f      fragment
}

// rangeHold is one handle's location book: per-stripe fragment counts
// (parallel stripes/counts slices), the escalated stripes, and whether the
// handle holds a supremum fragment and a global coarse gap entry. Exact
// release needs only this — not per-fragment locations: a release filters
// each counted stripe's slice by (tx, handle) in one pass. Holds are
// recycled through Manager.holdFree. All access under rangeMu.
type rangeHold struct {
	stripes []int
	counts  []int
	esc     []int
	sup     bool
	gapC    bool
}

// slot returns the index of stripe in the hold's parallel count slices,
// appending a zero-count entry if absent.
func (h *rangeHold) slot(stripe int) int {
	for i, s := range h.stripes {
		if s == stripe {
			return i
		}
	}
	h.stripes = append(h.stripes, stripe)
	h.counts = append(h.counts, 0)
	return len(h.stripes) - 1
}

// escIn reports whether the handle is escalated in stripe.
func (h *rangeHold) escIn(stripe int) bool {
	for _, s := range h.esc {
		if s == stripe {
			return true
		}
	}
	return false
}

func (h *rangeHold) reset() {
	h.stripes = h.stripes[:0]
	h.counts = h.counts[:0]
	h.esc = h.esc[:0]
	h.sup = false
	h.gapC = false
}

// newHold takes a hold from the free-list (or allocates the pool's next
// one). Called with rangeMu held.
func (m *Manager) newHold() *rangeHold {
	if n := len(m.holdFree); n > 0 {
		h := m.holdFree[n-1]
		m.holdFree = m.holdFree[:n-1]
		return h
	}
	return &rangeHold{}
}

// freeHold returns a hold to the free-list. Called with rangeMu held.
func (m *Manager) freeHold(h *rangeHold) {
	h.reset()
	m.holdFree = append(m.holdFree, h)
}

// gapStripeStats counts one stripe's gap-lock activity (under rangeMu).
type gapStripeStats struct {
	grants int64
	waits  int64
}

// gcInheritThreshold is the number of fragment inheritances between
// fragment-GC sweeps: deterministic (a counter, not a clock), cheap enough
// to bound inherited-fragment growth under insert storms, rare enough not
// to tax the drain path.
const gcInheritThreshold = 16

// RangeSpec describes the key range a scan locks: the predicate being
// protected, the anchors (present keys in [Lo, Hi), ascending — from
// sv.Store.RangeAnchors), and the ceiling (first present key at or above
// Hi; "" anchors the above-range gap at the supremum instead). Bounded
// false means the whole key space.
//
// Snapshot, when set, supersedes the static Anchors/Ceiling: the manager
// calls it at install time, under the range mutex, so the anchor set
// reflects the store at the serialization point of the range lock rather
// than at some earlier moment in the caller — a key inserted and
// committed between a caller-side snapshot and the acquisition would
// otherwise be a permanent hole in the scan's coverage. Queued range
// requests re-snapshot when finally granted, for the same reason.
//
// SnapshotInto, when set, supersedes both: it appends the anchor set as
// per-stripe sorted runs into the manager's reusable buffer (see
// sv.Store.AppendRangeAnchors) and returns only the ceiling, so the
// snapshot itself costs no allocations at steady state.
type RangeSpec struct {
	Pred         predicate.P
	Anchors      []data.Key
	Ceiling      data.Key
	Snapshot     func() (anchors []data.Key, ceiling data.Key)
	SnapshotInto func(*data.KeyRuns) (ceiling data.Key)
	Lo, Hi       data.Key
	Bounded      bool
}

// covers reports whether key lies in the spec's range.
func (s RangeSpec) covers(key data.Key) bool {
	return !s.Bounded || (s.Lo <= key && key < s.Hi)
}

// anchorNeedsFragment reports whether an existing anchor key must carry a
// fragment of the installing scan: every anchor inside the range, plus —
// when bounded — every anchor between Hi and the snapshot ceiling (all of
// them when no ceiling exists). gapCoverLocked consults only the single
// smallest anchor at or above an insert position, so a stale anchor
// between the range and its ceiling would otherwise shadow the ceiling
// (or supremum) fragment that protects the scan's uppermost gap — the
// above-range cousin of the in-range stale-anchor shadowing rule.
func anchorNeedsFragment(spec RangeSpec, ceiling data.Key, k data.Key) bool {
	if !spec.Bounded {
		return true
	}
	if k < spec.Lo {
		return false
	}
	if k < spec.Hi {
		return true
	}
	return ceiling == "" || k <= ceiling
}

// AcquireRange acquires a Shared key-range (next-key) lock for tx over
// spec, blocking until no exclusive item holder anywhere has a row image
// satisfying spec.Pred — the same admission rule as AcquirePred, decided
// against per-stripe state instead of a gated global table. The returned
// handle releases the lock. Returns ErrDeadlock under the standard
// requester-is-victim rule.
//
//isolint:allow latchorder the post-install refresh is guarded by rangeQLen/wf.Empty — with no admitted waiter there is no wait edge to go stale — and the back-out path reverts the install and refreshes via drainRangeLocked
func (m *Manager) AcquireRange(tx TxID, spec RangeSpec) (RangeHandle, error) {
	req := &request{tx: tx, mode: S, isRange: true, spec: spec, ready: make(chan error, 1), seq: m.seq.Add(1)}
	m.gate.RLock()
	m.rangeMu.Lock()
	rs := m.obs.Now()
	// Count the range before sweeping for conflicts: an insert's fast-path
	// gap check that still reads zero activity is thereby ordered before
	// this sweep, so the sweep (or the recheck an insert runs after its
	// item lock installs — see RecheckGap) is guaranteed to see one side
	// of the race. Every non-holder exit undoes the count.
	m.rangeActivity.Add(1)
	var granted []*request
	on := m.rangeConflictHoldersLocked(req)
	if len(on) == 0 {
		h := m.installRangeLocked(req)
		if again := m.rangeConflictHoldersLocked(req); len(again) != 0 {
			// A conflicting writer latched its stripe between our install
			// visit and the validation sweep (free-running mode only;
			// scripted runs execute one operation at a time). Back out and
			// wait like any other conflicted request — draining the
			// stripes that briefly held our fragments, so an item request
			// that queued behind one of them is re-evaluated rather than
			// stranded.
			touched := m.removeRangeHoldLocked(tx, h)
			granted = m.drainRangeLocked(touched)
			on = again
		} else {
			m.rangeGrants++
			// The new fragments extend the conflict sets of queued item
			// requests in any stripe (and of queued range requests); keep
			// every wait edge current or a later cycle goes undetected.
			// With no admitted waiter anywhere (empty waits-for graph, no
			// queued range request) there is nothing to refresh and the
			// all-stripe sweep is skipped — the common idle-scan case.
			if m.rangeQLen.Load() != 0 || !m.wf.Empty() {
				m.refreshAllRangeAwareLocked()
			}
			m.rangeMu.Unlock()
			m.obs.RecordRangeMuHold(rs)
			m.gate.RUnlock()
			return h, nil
		}
	}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.obsDeadlock(tx, on)
		m.rangeActivity.Add(-1)
		m.rangeMu.Unlock()
		m.obs.RecordRangeMuHold(rs)
		m.gate.RUnlock()
		m.notifyGranted(granted)
		return 0, ErrDeadlock
	}
	m.rangeQ = append(m.rangeQ, req)
	m.rangeQLen.Store(int64(len(m.rangeQ)))
	// (The entry count from above stays: a queued range request remains
	// counted, and keeps counting as a holder when granted.)
	m.rangeWaits++
	m.notifyWaiting(tx, on)
	m.obsWait(req, on, -1)
	m.rangeMu.Unlock()
	m.obs.RecordRangeMuHold(rs)
	m.gate.RUnlock()
	m.notifyGranted(granted)
	if err := m.await(req); err != nil {
		return 0, err
	}
	return req.rhandle, nil
}

// AcquireGap acquires the covering gap's exclusive lock for an insert of
// key (insert-intention style): it blocks while any fragment covering key
// — at the gap's owning anchor or the supremum — belongs to another
// transaction and has a predicate satisfied by the insert's images, and
// on grant inherits the covering fragments onto key so the gap's coverage
// survives the insert. A request that had to queue also blocks on the
// item holders at key, and its grant installs the insert's item hold
// atomically (consumed by the follow-up AcquireItem) — the predicate
// twin's insert is one item acquisition, and without the atomic install
// another writer could take the item while the granted insert was still
// in flight, manufacturing a deadlock the twin cannot produce. With no
// range activity it is one atomic load.
func (m *Manager) AcquireGap(tx TxID, key data.Key, im Images) error {
	return m.acquireGap(tx, key, im, true)
}

// RecheckGap re-runs the covering-gap check after the insert's exclusive
// item lock has installed. It closes the free-running race in which a
// scan begins between an insert's (empty) fast-path gap check and the
// item lock install: AcquireRange counts itself before its conflict
// sweep, so either this recheck observes the scan's activity (and waits
// on its fragments under rangeMu), or the scan's sweep observes the
// already-installed item lock (and yields). Scripted runs execute one
// operation at a time, so the recheck is always a no-op there; it is not
// counted in the gap statistics. The re-inherit on grant also restores
// record coverage at the insert key if a fragment-GC sweep collected it
// between the first gap check and the item install — the row only becomes
// visible to other writers after this call returns.
func (m *Manager) RecheckGap(tx TxID, key data.Key, im Images) error {
	return m.acquireGap(tx, key, im, false)
}

func (m *Manager) acquireGap(tx TxID, key data.Key, im Images, count bool) error {
	if m.rangeActivity.Load() == 0 {
		return nil
	}
	m.gate.RLock()
	m.rangeMu.Lock()
	rs := m.obs.Now()
	gc := m.gapCoverLocked(key)
	// The gap stage is the insert's single blocking point, mirroring the
	// predicate twin's one item acquisition: its conflict set spans the
	// covering fragment owners and the item holders at key alike.
	// Checking fragments only here and item holders in the follow-up
	// AcquireItem would let a drain grant the item while freshly granted
	// scans cover the gap — the twin keeps the whole insert queued behind
	// those scans' predicate locks, so the grant orders would diverge. A
	// self-held Shared lock makes the request the twin's upgrade, with
	// the same drain priority.
	holders, selfS := m.gapItemHoldersLocked(tx, key)
	on := unionTxIDs(gapConflicts(tx, key, im, gc), holders)
	spIdx := m.stripeIndex(key)
	if len(on) == 0 {
		escalated := m.inheritLocked(key, gc)
		if count {
			m.gapGrants++
			m.gapStripe[spIdx].grants++
		}
		// An escalation inside the inheritance coarsened some handle's
		// blocking; waiters' conflict sets may have grown, so their wait
		// edges must be recomputed before the next deadlock decision (with
		// no admitted waiter there is nothing to refresh — same guard as
		// the AcquireRange grant path).
		if escalated && (m.rangeQLen.Load() != 0 || !m.wf.Empty()) {
			m.refreshAllRangeAwareLocked()
		}
		m.rangeMu.Unlock()
		m.obs.RecordRangeMuHold(rs)
		m.gate.RUnlock()
		return nil
	}
	req := &request{tx: tx, mode: X, isGap: true, upgrade: selfS, key: key, im: im, ready: make(chan error, 1), seq: m.seq.Add(1)}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.obsDeadlock(tx, on)
		m.rangeMu.Unlock()
		m.obs.RecordRangeMuHold(rs)
		m.gate.RUnlock()
		return ErrDeadlock
	}
	m.rangeQ = append(m.rangeQ, req)
	m.rangeQLen.Store(int64(len(m.rangeQ)))
	m.rangeActivity.Add(1)
	m.gapWaits++
	m.gapStripe[spIdx].waits++
	m.notifyWaiting(tx, on)
	m.obsWait(req, on, spIdx)
	m.rangeMu.Unlock()
	m.obs.RecordRangeMuHold(rs)
	m.gate.RUnlock()
	return m.await(req)
}

// ReleaseRange releases the key-range lock identified by handle, removing
// every fragment it installed (including inherited copies) and draining
// the affected stripes and the range queue.
func (m *Manager) ReleaseRange(tx TxID, h RangeHandle) {
	m.gate.RLock()
	m.rangeMu.Lock()
	rs := m.obs.Now()
	touched := m.removeRangeHoldLocked(tx, h)
	m.rangeActivity.Add(-1)
	granted := m.drainRangeLocked(touched)
	m.rangeMu.Unlock()
	m.obs.RecordRangeMuHold(rs)
	m.gate.RUnlock()
	m.notifyGranted(granted)
}

// releaseAllRangeAware is ReleaseAll's path while range activity exists:
// tx's item holds, queued item requests, range holds and queued range/gap
// requests all go, followed by one global-arrival-order drain over every
// stripe that could have been unblocked plus the range queue. Called with
// the gate held shared; releases it.
func (m *Manager) releaseAllRangeAware(tx TxID) {
	m.rangeMu.Lock()
	m.wf.Remove(tx)
	touched := map[int]bool{}
	var cancelled []*request
	for _, spIdx := range m.takeFootprintSorted(tx) {
		sp := m.stripes[spIdx]
		sp.mu.Lock()
		for key := range sp.held[tx] {
			if st := sp.items[key]; st != nil {
				delete(st.holders, tx)
				if len(st.holders) == 0 {
					delete(sp.items, key)
				}
			}
		}
		delete(sp.held, tx)
		cancelled = append(cancelled, cancelQueued(&sp.queue, tx, m.wf)...)
		sp.mu.Unlock()
		touched[spIdx] = true
	}
	rangeTouched, rangeCancelled := m.releaseAllRangesLocked(tx)
	for i := range rangeTouched {
		touched[i] = true
	}
	cancelled = append(cancelled, rangeCancelled...)
	granted := m.drainRangeLocked(touched)
	m.rangeMu.Unlock()
	m.gate.RUnlock()
	m.notifyCancelled(cancelled, tx)
	m.notifyGranted(granted)
}

// HoldingRange reports whether tx holds any key-range lock.
func (m *Manager) HoldingRange(tx TxID) bool {
	m.rangeMu.Lock()
	defer m.rangeMu.Unlock()
	return len(m.rangeHolds[tx]) > 0
}

// rangeConflictHoldersLocked returns the transactions whose granted
// exclusive item locks — in any stripe — have a row image satisfying the
// range's predicate, sorted. The sweep latches one stripe at a time;
// called with rangeMu held.
func (m *Manager) rangeConflictHoldersLocked(req *request) []TxID {
	seen := map[TxID]bool{}
	for _, sp := range m.stripes {
		sp.mu.Lock()
		for key, st := range sp.items {
			for htx, h := range st.holders {
				if htx == req.tx || !conflicts(req.mode, h.mode) {
					continue
				}
				if h.im.matches(req.spec.Pred, key) {
					seen[htx] = true
				}
			}
		}
		sp.mu.Unlock()
	}
	return sortedTxIDs(seen)
}

// installRangeLocked installs req's fragments: one per anchor (plus the
// ceiling anchor, plus any lock-table-resident key in range — a row
// deleted by an uncommitted transaction has no store key but still needs
// record coverage — plus any stale anchor up to the ceiling, see
// anchorNeedsFragment), and a supremum fragment when no ceiling exists.
// Per stripe, the three sorted key sources (bucketed snapshot run,
// in-range item keys, existing anchors) merge into one run that a single
// backward pass splices into the stripe's fragment slice; with an
// escalation threshold configured, a run at or over it installs one
// coarse stripe entry instead. All staging lives in recycled Manager
// scratch. Called with rangeMu held; latches one stripe at a time.
//
//isolint:grant-mutator
func (m *Manager) installRangeLocked(req *request) RangeHandle {
	m.rangeHandles++
	h := m.rangeHandles
	req.rhandle = h
	hold := m.newHold()
	ceiling := m.snapshotAnchorsLocked(req.spec)
	m.bucketAnchorsLocked(ceiling)
	m.densifyAnchorsLocked(req.spec, ceiling)
	f := fragment{tx: req.tx, handle: h, pred: req.spec.Pred}
	for i, sp := range m.stripes {
		sp.mu.Lock()
		run := m.stripeInstallRunLocked(sp, req.spec, ceiling, m.runBuckets[i])
		if len(run) == 0 {
			sp.mu.Unlock()
			continue
		}
		if m.escalation > 0 && len(run) >= m.escalation {
			sp.coarse = append(sp.coarse, f)
			sp.mu.Unlock()
			hold.esc = append(hold.esc, i)
			m.noteGapCoarseLocked(hold, f)
			m.escalations++
			if m.obs != nil {
				m.obs.Escalate(int(req.tx), i)
			}
			continue
		}
		insertFragRun(sp, run, f)
		sp.mu.Unlock()
		hold.counts[hold.slot(i)] += len(run)
	}
	if ceiling == "" {
		m.supFrags = append(m.supFrags, f)
		hold.sup = true
	}
	if m.rangeHolds == nil {
		m.rangeHolds = map[TxID]map[RangeHandle]*rangeHold{}
	}
	hm := m.rangeHolds[req.tx]
	if hm == nil {
		hm = map[RangeHandle]*rangeHold{}
		m.rangeHolds[req.tx] = hm
	}
	hm[h] = hold
	return h
}

// densifyAnchorsLocked preserves gap coverage across the anchor
// densification an install is about to perform. gapCoverLocked consults
// only the single smallest fragment-bearing anchor at or above an insert
// position, so a fragment anchored at a key that carried none before — a
// lock-table-resident key with no row, or a fresh snapshot key inside a
// gap an older scan already covers — would shadow the covering fragments
// (or the supremum fragments) above it: an insert below the new anchor
// would consult only the new scan's fragment and sail past the older
// scan's. Before any of this install's fragments land, every such new
// anchor inherits its pre-install cover, exactly as a granted insert
// inherits its gap's cover onto the inserted key. Ascending key order
// keeps each cover a pre-install one: an inherited copy at a lower key
// never shadows a higher one. A no-op — one length sweep — while no
// fragment exists anywhere. Called with rangeMu held and no stripe latch
// held; latches one stripe at a time.
func (m *Manager) densifyAnchorsLocked(spec RangeSpec, ceiling data.Key) {
	shadowable := len(m.supFrags) != 0
	for _, sp := range m.stripes {
		if len(sp.frags) != 0 {
			shadowable = true
			break
		}
	}
	if !shadowable {
		return
	}
	newKeys := m.newAnchors[:0]
	for i, sp := range m.stripes {
		sp.mu.Lock()
		run := m.stripeInstallRunLocked(sp, spec, ceiling, m.runBuckets[i])
		for _, k := range run {
			if lo, hi := fragWindow(sp.frags, k); lo == hi {
				newKeys = append(newKeys, k)
			}
		}
		sp.mu.Unlock()
	}
	m.newAnchors = newKeys
	sort.Slice(newKeys, func(a, b int) bool { return newKeys[a] < newKeys[b] })
	for _, k := range newKeys {
		m.inheritLocked(k, m.gapCoverLocked(k))
	}
}

// snapshotAnchorsLocked fills m.snapRuns with the spec's anchor set —
// via SnapshotInto (zero-copy), Snapshot, or the static Anchors — and
// returns the ceiling. Called with rangeMu held.
func (m *Manager) snapshotAnchorsLocked(spec RangeSpec) data.Key {
	m.snapRuns.Reset()
	switch {
	case spec.SnapshotInto != nil:
		return spec.SnapshotInto(&m.snapRuns)
	case spec.Snapshot != nil:
		anchors, ceiling := spec.Snapshot()
		m.snapRuns.Keys = append(m.snapRuns.Keys, anchors...)
		m.snapRuns.EndRun()
		return ceiling
	default:
		m.snapRuns.Keys = append(m.snapRuns.Keys, spec.Anchors...)
		m.snapRuns.EndRun()
		return spec.Ceiling
	}
}

// bucketAnchorsLocked distributes m.snapRuns (plus the ceiling) into the
// per-stripe buckets, restoring per-bucket sort order where runs
// interleaved — when the snapshot's striping matches the lock manager's
// (every engine wires it that way), each run lands in exactly one bucket
// already ascending and the sort never fires. Called with rangeMu held.
func (m *Manager) bucketAnchorsLocked(ceiling data.Key) {
	for i := range m.runBuckets {
		m.runBuckets[i] = m.runBuckets[i][:0]
	}
	for ri := 0; ri < m.snapRuns.NumRuns(); ri++ {
		for _, k := range m.snapRuns.Run(ri) {
			i := m.stripeIndex(k)
			m.runBuckets[i] = append(m.runBuckets[i], k)
		}
	}
	if ceiling != "" {
		i := m.stripeIndex(ceiling)
		m.runBuckets[i] = append(m.runBuckets[i], ceiling)
	}
	for i, b := range m.runBuckets {
		if !keysSorted(b) {
			sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
			m.runBuckets[i] = b
		}
	}
}

func keysSorted(keys []data.Key) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// stripeInstallRunLocked merges the three sorted per-stripe key sources of
// an install — the bucketed snapshot anchors (with ceiling), the stripe's
// in-range lock-table-resident item keys, and the anchors already carrying
// fragments (in range or shadowing the ceiling) — into one ascending
// duplicate-free run in m.mergeRun. Called with rangeMu and sp's latch
// held.
func (m *Manager) stripeInstallRunLocked(sp *stripe, spec RangeSpec, ceiling data.Key, bucket []data.Key) []data.Key {
	items := m.itemKeys[:0]
	if len(sp.items) != 0 {
		for key := range sp.items {
			if spec.covers(key) {
				items = append(items, key)
			}
		}
		if len(items) > 1 {
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		}
	}
	m.itemKeys = items
	anchors := m.anchorKeys[:0]
	for i := 0; i < len(sp.frags); {
		a := sp.frags[i].anchor
		for i < len(sp.frags) && sp.frags[i].anchor == a {
			i++
		}
		if anchorNeedsFragment(spec, ceiling, a) {
			anchors = append(anchors, a)
		}
	}
	m.anchorKeys = anchors
	m.mergeRun = mergeUniqueKeys(m.mergeRun[:0], bucket, items, anchors)
	return m.mergeRun
}

// mergeUniqueKeys merges three ascending key runs into dst, dropping
// duplicates across (and within) runs.
func mergeUniqueKeys(dst []data.Key, a, b, c []data.Key) []data.Key {
	ai, bi, ci := 0, 0, 0
	for ai < len(a) || bi < len(b) || ci < len(c) {
		var min data.Key
		have := false
		if ai < len(a) {
			min, have = a[ai], true
		}
		if bi < len(b) && (!have || b[bi] < min) {
			min, have = b[bi], true
		}
		if ci < len(c) && (!have || c[ci] < min) {
			min = c[ci]
		}
		for ai < len(a) && a[ai] == min {
			ai++
		}
		for bi < len(b) && b[bi] == min {
			bi++
		}
		for ci < len(c) && c[ci] == min {
			ci++
		}
		dst = append(dst, min)
	}
	return dst
}

// insertFragRun splices one fragment per run key into sp's sorted slice in
// a single backward merge pass. Run keys must be ascending and not already
// carry an entry for f's handle. Called with rangeMu and sp's latch held.
func insertFragRun(sp *stripe, run []data.Key, f fragment) {
	need := len(run)
	if need == 0 {
		return
	}
	n := len(sp.frags)
	if cap(sp.frags)-n < need {
		grown := make([]anchoredFrag, n, growCap(cap(sp.frags), n+need))
		copy(grown, sp.frags)
		sp.frags = grown
	}
	sp.frags = sp.frags[:n+need]
	i, j, w := n-1, need-1, n+need-1
	for j >= 0 {
		if i >= 0 && sp.frags[i].anchor > run[j] {
			sp.frags[w] = sp.frags[i]
			i--
		} else {
			sp.frags[w] = anchoredFrag{anchor: run[j], f: f}
			j--
		}
		w--
	}
}

func growCap(oldCap, need int) int {
	if doubled := 2 * oldCap; doubled > need {
		return doubled
	}
	return need
}

// insertFragsAt splices copies at one anchor key (gap inheritance and GC
// migration). Called with rangeMu and sp's latch held.
func insertFragsAt(sp *stripe, key data.Key, frags []fragment) {
	need := len(frags)
	if need == 0 {
		return
	}
	pos := sort.Search(len(sp.frags), func(i int) bool { return sp.frags[i].anchor >= key })
	n := len(sp.frags)
	if cap(sp.frags)-n < need {
		grown := make([]anchoredFrag, n, growCap(cap(sp.frags), n+need))
		copy(grown, sp.frags)
		sp.frags = grown
	}
	sp.frags = sp.frags[:n+need]
	copy(sp.frags[pos+need:], sp.frags[pos:n])
	for k, f := range frags {
		sp.frags[pos+k] = anchoredFrag{anchor: key, f: f}
	}
}

// fragWindow returns the half-open index window of entries anchored at key.
func fragWindow(frags []anchoredFrag, key data.Key) (int, int) {
	i := sort.Search(len(frags), func(x int) bool { return frags[x].anchor >= key })
	j := i
	for j < len(frags) && frags[j].anchor == key {
		j++
	}
	return i, j
}

// removeHandleFrags filters (tx, h)'s entries out of sp's slice in place,
// zeroing the vacated tail so predicate references are dropped. Returns
// the number removed. Called with rangeMu and sp's latch held.
func removeHandleFrags(sp *stripe, tx TxID, h RangeHandle) int {
	kept := sp.frags[:0]
	for _, e := range sp.frags {
		if e.f.tx != tx || e.f.handle != h {
			kept = append(kept, e)
		}
	}
	removed := len(sp.frags) - len(kept)
	for i := len(kept); i < len(sp.frags); i++ {
		sp.frags[i] = anchoredFrag{}
	}
	sp.frags = kept
	return removed
}

// dropCoarse filters (tx, h)'s entries out of a coarse/supremum fragment
// slice in place.
func dropCoarse(frags []fragment, tx TxID, h RangeHandle) []fragment {
	kept := frags[:0]
	for _, f := range frags {
		if f.tx != tx || f.handle != h {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(frags); i++ {
		frags[i] = fragment{}
	}
	return kept
}

// noteGapCoarseLocked installs the handle's global coarse gap entry (once
// per handle): it conflicts, unrefined, with every other transaction's
// insert anywhere — the gap side of escalating to the coarser granule.
// Called with rangeMu held.
func (m *Manager) noteGapCoarseLocked(hold *rangeHold, f fragment) {
	if hold.gapC {
		return
	}
	hold.gapC = true
	m.gapCoarse = append(m.gapCoarse, fragment{tx: f.tx, handle: f.handle})
}

// removeRangeHoldLocked deletes every fragment of (tx, h) — per-anchor,
// coarse, supremum and gap-coarse — and returns the set of stripe indexes
// that lost entries. Called with rangeMu held.
func (m *Manager) removeRangeHoldLocked(tx TxID, h RangeHandle) map[int]bool {
	touched := map[int]bool{}
	hm := m.rangeHolds[tx]
	hold := hm[h]
	delete(hm, h)
	if len(hm) == 0 {
		delete(m.rangeHolds, tx)
	}
	if hold == nil {
		return touched
	}
	for idx, spIdx := range hold.stripes {
		if hold.counts[idx] == 0 {
			continue
		}
		sp := m.stripes[spIdx]
		sp.mu.Lock()
		removeHandleFrags(sp, tx, h)
		sp.mu.Unlock()
		touched[spIdx] = true
	}
	for _, spIdx := range hold.esc {
		sp := m.stripes[spIdx]
		sp.mu.Lock()
		sp.coarse = dropCoarse(sp.coarse, tx, h)
		sp.mu.Unlock()
		touched[spIdx] = true
	}
	if hold.sup {
		m.supFrags = dropCoarse(m.supFrags, tx, h)
	}
	if hold.gapC {
		m.gapCoarse = dropCoarse(m.gapCoarse, tx, h)
	}
	m.freeHold(hold)
	return touched
}

// releaseAllRangesLocked removes every range hold of tx and cancels its
// queued range/gap requests (ReleaseAll's range side). Returns the touched
// stripes and the cancelled requests. Called with rangeMu held.
func (m *Manager) releaseAllRangesLocked(tx TxID) (map[int]bool, []*request) {
	touched := map[int]bool{}
	//isolint:ordered removals of tx's own distinct handles commute; grants drain afterward in queue order
	for h := range m.rangeHolds[tx] {
		for i := range m.removeRangeHoldLocked(tx, h) {
			touched[i] = true
		}
		m.rangeActivity.Add(-1)
	}
	cancelled := cancelQueued(&m.rangeQ, tx, m.wf)
	m.rangeQLen.Store(int64(len(m.rangeQ)))
	m.rangeActivity.Add(-int64(len(cancelled)))
	return touched, cancelled
}

// gapCover is the read-only view a gap check evaluates against: the
// entries at the covering anchor (the smallest anchor at or above the
// insert position) or the supremum fragments when none exists, plus the
// escalated gap entries, which cover every position. Views alias the live
// slices — valid only while rangeMu is held, and callers that mutate
// fragment state (inheritance) must copy before inserting.
type gapCover struct {
	frags    []anchoredFrag
	sup      []fragment
	coarse   []fragment
	anchor   data.Key
	anchored bool
}

// gapCoverLocked returns the cover of an insert at key. Reading stripe
// fragment slices here takes no stripe latch: writers hold rangeMu (held
// by us) alongside the stripe latch, so no mutation can be concurrent —
// this is what lets the view be zero-copy. Called with rangeMu held.
func (m *Manager) gapCoverLocked(key data.Key) gapCover {
	gc := gapCover{coarse: m.gapCoarse}
	found := false
	var best data.Key
	var bestSp *stripe
	for _, sp := range m.stripes {
		if len(sp.frags) == 0 {
			continue
		}
		i := sort.Search(len(sp.frags), func(x int) bool { return sp.frags[x].anchor >= key })
		if i == len(sp.frags) {
			continue
		}
		if a := sp.frags[i].anchor; !found || a < best {
			best, bestSp, found = a, sp, true
		}
	}
	if !found {
		gc.sup = m.supFrags
		return gc
	}
	i, j := fragWindow(bestSp.frags, best)
	gc.frags = bestSp.frags[i:j]
	gc.anchor, gc.anchored = best, true
	return gc
}

// gapConflicts filters the cover down to the conflicting holders: a
// refined fragment of another transaction whose predicate is satisfied by
// either image of the insert, or any other transaction's escalated gap
// entry (unrefined — conservative by construction).
func gapConflicts(tx TxID, key data.Key, im Images, gc gapCover) []TxID {
	var seen map[TxID]bool
	add := func(owner TxID) {
		if seen == nil {
			seen = map[TxID]bool{}
		}
		seen[owner] = true
	}
	for _, e := range gc.frags {
		if e.f.tx != tx && im.matches(e.f.pred, key) {
			add(e.f.tx)
		}
	}
	for _, f := range gc.sup {
		if f.tx != tx && im.matches(f.pred, key) {
			add(f.tx)
		}
	}
	for _, f := range gc.coarse {
		if f.tx != tx {
			add(f.tx)
		}
	}
	return sortedTxIDs(seen)
}

// gapItemHoldersLocked collects the transactions other than tx holding an
// item lock on key, ascending, and reports whether tx itself holds the
// key in Shared mode (the insert is then the twin's upgrade). The holders
// join a gap request's conflict set: the predicate twin's insert takes
// one item lock whose sweep spans item holders and predicate owners
// alike, and the gap grant installs the item hold atomically to match.
// Called with rangeMu held and no stripe latch held; latches key's
// stripe briefly.
func (m *Manager) gapItemHoldersLocked(tx TxID, key data.Key) ([]TxID, bool) {
	sp := m.stripeOf(key)
	sp.mu.Lock()
	var on []TxID
	selfS := false
	if st := sp.items[key]; st != nil {
		//isolint:ordered the collected holders are sorted below; selfS is a single flag
		for owner, h := range st.holders {
			if owner != tx {
				on = append(on, owner)
			} else if h.mode == S {
				selfS = true
			}
		}
	}
	sp.mu.Unlock()
	sort.Slice(on, func(i, j int) bool { return on[i] < on[j] })
	return on, selfS
}

// unionTxIDs merges two ascending TxID slices into one ascending,
// deduplicated slice.
func unionTxIDs(a, b []TxID) []TxID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]TxID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// inheritLocked copies the covering fragments onto key (the next-key
// inheritance of a granted insert), registering each copy in its owner's
// hold so release stays exact, and escalating any handle whose per-stripe
// count crosses the threshold. The cover is copied into scratch before the
// splice — the view may alias the very slice the splice shifts. Handles
// already escalated in key's stripe are skipped: their coarse entry covers
// the whole stripe. A no-op when key is already the covering anchor.
// Reports whether any escalation happened. Called with rangeMu held.
func (m *Manager) inheritLocked(key data.Key, gc gapCover) bool {
	if (len(gc.frags) == 0 && len(gc.sup) == 0) || (gc.anchored && gc.anchor == key) {
		return false
	}
	spIdx := m.stripeIndex(key)
	sp := m.stripes[spIdx]
	copies := m.fragCopy[:0]
	for _, e := range gc.frags {
		if hold := m.rangeHolds[e.f.tx][e.f.handle]; hold != nil && hold.escIn(spIdx) {
			continue
		}
		copies = append(copies, e.f)
	}
	for _, f := range gc.sup {
		if hold := m.rangeHolds[f.tx][f.handle]; hold != nil && hold.escIn(spIdx) {
			continue
		}
		copies = append(copies, f)
	}
	m.fragCopy = copies
	if len(copies) == 0 {
		return false
	}
	sp.mu.Lock()
	insertFragsAt(sp, key, copies)
	sp.mu.Unlock()
	escalated := false
	for _, f := range copies {
		hold := m.rangeHolds[f.tx][f.handle]
		if hold == nil {
			continue
		}
		idx := hold.slot(spIdx)
		hold.counts[idx]++
		if m.escalation > 0 && hold.counts[idx] >= m.escalation {
			m.escalateLocked(f, hold, spIdx)
			escalated = true
		}
	}
	m.inheritsSinceGC += len(copies)
	return escalated
}

// escalateLocked collapses (f.tx, f.handle)'s per-anchor fragments in
// stripe spIdx into one coarse whole-stripe entry plus the handle's global
// gap entry, and counts the escalation. Called with rangeMu held.
func (m *Manager) escalateLocked(f fragment, hold *rangeHold, spIdx int) {
	sp := m.stripes[spIdx]
	sp.mu.Lock()
	removeHandleFrags(sp, f.tx, f.handle)
	sp.coarse = append(sp.coarse, fragment{tx: f.tx, handle: f.handle})
	sp.mu.Unlock()
	hold.counts[hold.slot(spIdx)] = 0
	hold.esc = append(hold.esc, spIdx)
	m.noteGapCoarseLocked(hold, f)
	m.escalations++
	if m.obs != nil {
		m.obs.Escalate(int(f.tx), spIdx)
	}
}

// fragmentConflictHolders returns the holders of fragments anchored at
// req.key — plus the stripe's escalated coarse entries, which conflict
// unrefined — that an exclusive item request conflicts with. Called with
// the key's stripe latched.
func fragmentConflictHolders(sp *stripe, req *request) []TxID {
	if req.mode != X || (len(sp.frags) == 0 && len(sp.coarse) == 0) {
		return nil
	}
	var seen map[TxID]bool
	add := func(owner TxID) {
		if seen == nil {
			seen = map[TxID]bool{}
		}
		seen[owner] = true
	}
	i, j := fragWindow(sp.frags, req.key)
	for _, e := range sp.frags[i:j] {
		if e.f.tx != req.tx && req.im.matches(e.f.pred, req.key) {
			add(e.f.tx)
		}
	}
	for _, f := range sp.coarse {
		if f.tx != req.tx {
			add(f.tx)
		}
	}
	return sortedTxIDs(seen)
}

// itemConflictHoldersLocked is the fragment-aware item conflict set: the
// same-key item holders plus the holders of fragments anchored at the key.
// Called with the key's stripe latched (or the gate exclusive).
func (m *Manager) itemConflictHoldersLocked(sp *stripe, req *request) []TxID {
	out := itemConflictHolders(sp.items[req.key], req)
	fr := fragmentConflictHolders(sp, req)
	if len(fr) == 0 {
		return out
	}
	seen := map[TxID]bool{}
	for _, tx := range out {
		seen[tx] = true
	}
	for _, tx := range fr {
		seen[tx] = true
	}
	return sortedTxIDs(seen)
}

// drainRangeIfWaiters runs the range-aware drain when any range or gap
// request is queued (one atomic load otherwise). Called with the gate held
// shared and no stripe latch held.
func (m *Manager) drainRangeIfWaiters(touched map[int]bool) []*request {
	if m.rangeQLen.Load() == 0 {
		return nil
	}
	m.rangeMu.Lock()
	granted := m.drainRangeLocked(touched)
	m.rangeMu.Unlock()
	return granted
}

// drainRangeLocked grants every grantable waiter among the touched
// stripes' item queues and the range queue, in global upgrade-first
// arrival order — the same grant order as the gated drainAllLocked, which
// is what keeps the two phantom protocols' wake-up sequences identical —
// then runs the fragment-GC sweep when due (it preserves every covering
// set exactly, so it cannot grant or block anything) and refreshes the
// wait edges of everything still blocked. Called with rangeMu held and no
// stripe latch held.
func (m *Manager) drainRangeLocked(touched map[int]bool) []*request {
	if touched == nil {
		touched = map[int]bool{}
	}
	var granted []*request
	for {
		// Recomputed each pass: a range grant backed out inside the loop
		// adds the stripes that briefly held its fragments, whose item
		// waiters must be re-evaluated too.
		stripes := make([]int, 0, len(touched))
		for i := range touched {
			stripes = append(stripes, i)
		}
		sort.Ints(stripes)
		var cands []*request
		for _, i := range stripes {
			sp := m.stripes[i]
			sp.mu.Lock()
			for _, r := range sp.queue {
				if len(m.itemConflictHoldersLocked(sp, r)) == 0 {
					cands = append(cands, r)
				}
			}
			sp.mu.Unlock()
		}
		for _, r := range m.rangeQ {
			switch {
			case r.isRange:
				if len(m.rangeConflictHoldersLocked(r)) == 0 {
					cands = append(cands, r)
				}
			case r.isGap:
				holders, _ := m.gapItemHoldersLocked(r.tx, r.key)
				if len(holders) == 0 &&
					len(gapConflicts(r.tx, r.key, r.im, m.gapCoverLocked(r.key))) == 0 {
					cands = append(cands, r)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		best := cands[0]
		for _, r := range cands[1:] {
			if r.upgrade != best.upgrade {
				if r.upgrade {
					best = r
				}
				continue
			}
			if r.seq < best.seq {
				best = r
			}
		}
		if m.grantRangeAwareLocked(best, touched) {
			granted = append(granted, best)
		}
	}
	if m.rowPresent != nil && m.inheritsSinceGC >= gcInheritThreshold {
		m.inheritsSinceGC = 0
		m.sweepDeadAnchorsLocked()
	}
	// Edges are refreshed across every stripe, not just the touched ones:
	// a range grant inside the loop installs fragments wherever its
	// anchors live, extending item waiters' conflict sets far beyond the
	// stripes this drain released in. When the drain granted nothing and
	// no waiter exists anywhere — no queued range request and an empty
	// waits-for graph (a queued request with no edges would have been a
	// grantable candidate above) — there are no edges to refresh, and
	// skipping the all-stripe sweep keeps an idle scan from taxing every
	// unrelated release with O(stripes) latch work.
	if len(granted) == 0 && m.rangeQLen.Load() == 0 && m.wf.Empty() {
		return granted
	}
	m.refreshAllRangeAwareLocked()
	return granted
}

// sweepDeadAnchorsLocked migrates the fragments of every dead anchor — an
// anchor key with no row, no item-lock entry and no queued item request —
// to the smallest live anchor above it (or the supremum), deduplicating
// per handle. Blocking is preserved exactly: a gap position the dead
// anchor owned is owned by the successor afterwards, whose fragment set
// becomes a superset of the migrated one, and any extra member either
// already applied there or cannot match there (a fragment's predicate
// never matches a key outside its bounds, and the only write possible at
// a rowless, lockless key — a delete of an absent row — carries nil
// images, which satisfy no predicate). Called with rangeMu held; latches
// one stripe at a time.
func (m *Manager) sweepDeadAnchorsLocked() {
	m.fragGCs++
	reclaimedBefore := m.fragsReclaimed
	defer func() {
		if m.obs != nil {
			m.obs.GCSweep(-1, int(m.fragsReclaimed-reclaimedBefore))
		}
	}()
	for _, sp := range m.stripes {
		if len(sp.frags) == 0 {
			continue
		}
		cand := m.gcKeys[:0]
		sp.mu.Lock()
		for i := 0; i < len(sp.frags); {
			a := sp.frags[i].anchor
			for i < len(sp.frags) && sp.frags[i].anchor == a {
				i++
			}
			if sp.items[a] == nil && !queuedAt(sp.queue, a) {
				cand = append(cand, a)
			}
		}
		sp.mu.Unlock()
		m.gcKeys = cand
		for _, a := range cand {
			// The row check runs outside the stripe latch (the store has
			// its own latches); liveness is re-validated under the latch in
			// collectAnchorLocked. A row appearing concurrently is only
			// possible for an insert already past its gap check — whose
			// RecheckGap, ordered behind our rangeMu, re-inherits coverage
			// at the key before the row becomes visible to other writers.
			if m.rowPresent(a) {
				continue
			}
			m.collectAnchorLocked(sp, a)
		}
	}
}

// collectAnchorLocked removes one dead anchor's fragments and migrates
// them to the successor anchor (or the supremum), updating each owner's
// hold. Re-validates deadness under the stripe latch. Called with rangeMu
// held.
func (m *Manager) collectAnchorLocked(sp *stripe, a data.Key) {
	sp.mu.Lock()
	i, j := fragWindow(sp.frags, a)
	if i == j || sp.items[a] != nil || queuedAt(sp.queue, a) {
		sp.mu.Unlock()
		return
	}
	moved := m.fragCopy[:0]
	for _, e := range sp.frags[i:j] {
		moved = append(moved, e.f)
	}
	m.fragCopy = moved
	kept := append(sp.frags[:i], sp.frags[j:]...)
	for x := len(kept); x < len(sp.frags); x++ {
		sp.frags[x] = anchoredFrag{}
	}
	sp.frags = kept
	sp.mu.Unlock()

	// The migration target: the smallest anchor strictly above a across
	// every stripe (a's own entries are already gone), or the supremum.
	found := false
	var succ data.Key
	var succSp *stripe
	for _, osp := range m.stripes {
		idx := sort.Search(len(osp.frags), func(x int) bool { return osp.frags[x].anchor > a })
		if idx == len(osp.frags) {
			continue
		}
		if k := osp.frags[idx].anchor; !found || k < succ {
			succ, succSp, found = k, osp, true
		}
	}
	if !found {
		for _, f := range moved {
			hold := m.rangeHolds[f.tx][f.handle]
			if hold == nil {
				continue
			}
			hold.counts[hold.slot(sp.idx)]--
			if hold.sup {
				m.fragsReclaimed++
				continue
			}
			m.supFrags = append(m.supFrags, f)
			hold.sup = true
		}
		return
	}
	// Deduplicate against the handles already anchored at the successor,
	// then splice the rest in one pass.
	succSp.mu.Lock()
	si, sj := fragWindow(succSp.frags, succ)
	migrate := moved[:0]
	for _, f := range moved {
		dup := false
		for _, e := range succSp.frags[si:sj] {
			if e.f.tx == f.tx && e.f.handle == f.handle {
				dup = true
				break
			}
		}
		if dup {
			m.fragsReclaimed++
			if hold := m.rangeHolds[f.tx][f.handle]; hold != nil {
				hold.counts[hold.slot(sp.idx)]--
			}
			continue
		}
		migrate = append(migrate, f)
	}
	insertFragsAt(succSp, succ, migrate)
	succSp.mu.Unlock()
	for _, f := range migrate {
		hold := m.rangeHolds[f.tx][f.handle]
		if hold == nil {
			continue
		}
		hold.counts[hold.slot(sp.idx)]--
		hold.counts[hold.slot(succSp.idx)]++
	}
	m.fragCopy = migrate
}

// queuedAt reports whether any queued item request targets key. Called
// with the queue's stripe latched.
func queuedAt(q []*request, key data.Key) bool {
	for _, r := range q {
		if r.key == key {
			return true
		}
	}
	return false
}

// refreshAllRangeAwareLocked recomputes the wait edges of every queued
// request — item queues in every stripe (fragment-aware) and the range
// queue — the range counterpart of the gated refreshAllWaitersLocked.
// Called with rangeMu held.
//
//isolint:waiter-refresh
func (m *Manager) refreshAllRangeAwareLocked() {
	for _, sp := range m.stripes {
		sp.mu.Lock()
		for _, r := range sp.queue {
			m.wf.Refresh(r.tx, m.itemConflictHoldersLocked(sp, r))
		}
		sp.mu.Unlock()
	}
	m.refreshRangeWaitersLocked()
}

// grantRangeAwareLocked installs one drained request, re-verifying its
// conflict set under the final latches (candidates were computed with
// latches released between stripes). Reports whether the grant happened;
// a range back-out adds the stripes that briefly held its fragments to
// the caller's touched set so their waiters are re-evaluated. Called with
// rangeMu held.
//
//isolint:allow latchorder installs are batched — the only caller, drainRangeLocked, runs refreshAllRangeAwareLocked once after the grant loop, before rangeMu is released
func (m *Manager) grantRangeAwareLocked(r *request, touched map[int]bool) bool {
	switch {
	case r.isRange:
		h := m.installRangeLocked(r)
		if again := m.rangeConflictHoldersLocked(r); len(again) != 0 {
			for i := range m.removeRangeHoldLocked(r.tx, h) {
				touched[i] = true
			}
			return false
		}
		m.rangeGrants++
		removeRequest(&m.rangeQ, r)
		m.rangeQLen.Store(int64(len(m.rangeQ)))
	case r.isGap:
		gc := m.gapCoverLocked(r.key)
		if len(gapConflicts(r.tx, r.key, r.im, gc)) != 0 {
			return false
		}
		// The gap grant is this protocol's atomic acquisition point: the
		// predicate twin's insert takes a single item lock, so no other
		// writer can slip an item lock in between a granted gap and the
		// insert's item acquisition. Mirror that by re-verifying the item
		// is free and installing the requester's hold here, under the
		// stripe latch, marked reserved; the insert's follow-up
		// AcquireItem consumes the reservation refs-neutrally. A recheck
		// request (RecheckGap) already holds the item exclusively, so the
		// install collapses to a no-op for it.
		sp := m.stripeOf(r.key)
		sp.mu.Lock()
		if st := sp.items[r.key]; st != nil {
			//isolint:ordered existence check only — any foreign holder vetoes the grant
			for owner := range st.holders {
				if owner != r.tx {
					sp.mu.Unlock()
					return false
				}
			}
		}
		if st := sp.items[r.key]; st == nil || st.holders[r.tx] == nil {
			m.installItemLocked(sp, r)
			sp.items[r.key].holders[r.tx].reserved = true
		}
		sp.mu.Unlock()
		m.inheritLocked(r.key, gc)
		spIdx := m.stripeIndex(r.key)
		m.gapGrants++
		m.gapStripe[spIdx].grants++
		removeRequest(&m.rangeQ, r)
		m.rangeQLen.Store(int64(len(m.rangeQ)))
		m.rangeActivity.Add(-1) // gap locks are transient: intent only
	default:
		sp := m.stripeOf(r.key)
		sp.mu.Lock()
		// Re-verify the request is still queued: between the candidate
		// scan and this grant, a concurrent striped-path drain (another
		// release observing rangeActivity already at zero) may have
		// granted it, and installing for an already-woken — possibly
		// already-terminated — transaction would leak an unreleasable
		// lock.
		if !queuedRequest(sp.queue, r) {
			sp.mu.Unlock()
			return false
		}
		if len(m.itemConflictHoldersLocked(sp, r)) != 0 {
			sp.mu.Unlock()
			return false
		}
		m.installItemLocked(sp, r)
		removeRequest(&sp.queue, r)
		sp.mu.Unlock()
	}
	m.wf.Remove(r.tx)
	return true
}

// refreshRangeWaitersLocked recomputes the wait edges of every queued
// range and gap request. Called with rangeMu held.
//
//isolint:waiter-refresh
func (m *Manager) refreshRangeWaitersLocked() {
	for _, r := range m.rangeQ {
		switch {
		case r.isRange:
			m.wf.Refresh(r.tx, m.rangeConflictHoldersLocked(r))
		case r.isGap:
			holders, _ := m.gapItemHoldersLocked(r.tx, r.key)
			m.wf.Refresh(r.tx, unionTxIDs(
				gapConflicts(r.tx, r.key, r.im, m.gapCoverLocked(r.key)), holders))
		}
	}
}

// queuedRequest reports whether req is still present in q. Called with
// the queue's latch held.
func queuedRequest(q []*request, req *request) bool {
	for _, r := range q {
		if r == req {
			return true
		}
	}
	return false
}

func sortedTxIDs(seen map[TxID]bool) []TxID {
	if len(seen) == 0 {
		return nil
	}
	out := make([]TxID, 0, len(seen))
	for tx := range seen {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
