// Key-range (next-key) locking: the striped alternative to the predicate
// table for phantom prevention.
//
// A predicate lock (§2.3) is a lock on every data item satisfying a
// <search condition> — including phantoms — which is why the predicate
// table lives behind a cross-stripe gate: its conflicts can surface in any
// stripe. Key-range locking finitizes the same coverage instead of
// centralizing it. The existing keys partition the key space into records
// and gaps; a range scan decomposes its protection into per-key *next-key
// fragments*, one per existing key in the predicate's key range (each
// fragment covers its anchor key and the gap below it) plus one supremum
// fragment for the gap above the last anchor. Fragments live in the lock
// table stripe of their anchor key, so:
//
//   - an update or delete of key k checks only the fragments anchored at k
//     — its own stripe, under the stripe latch it already holds;
//   - an insert of a new key j checks the fragments at the smallest anchor
//     at or above j (the gap's owner) and, when granted, copies the
//     covering fragments onto j — InnoDB-style gap-lock inheritance, so
//     coverage survives the key space densifying under a live scan;
//   - disjoint-key item traffic never touches any cross-stripe structure:
//     while no fragment is held or wanted (one atomic counter, the exact
//     predActivity pattern) every fast path is byte-for-byte the striped
//     item path, and even with a live scan, item operations consult only
//     their own stripe. The shared-exclusive gate's exclusive side is
//     never taken on this protocol (Stats.GateAcquires stays zero).
//
// Conflicts are image-refined: a fragment carries its scan's predicate,
// and a write conflicts with it only if the write's before- or after-image
// satisfies that predicate — the same MatchEither rule as the predicate
// table. The refinement is what makes the two protocols behaviorally
// equivalent (same blocking, same waits-for edges, same deadlock victims),
// which the differential fuzzer verifies by running both engine families
// over the same schedules; classic next-key locking without refinement
// would be sound but coarser, blocking non-matching writes into covered
// gaps.
//
// Range acquisition is optimistic install-then-validate: fragments are
// installed stripe by stripe under each stripe's latch, then the conflict
// sweep runs once more. A conflicting writer either saw an installed
// fragment under its stripe latch (and waited) or installed its exclusive
// lock before the validation visit (and the validation backs the range
// out to the wait queue) — either way no conflict is missed without any
// global quiescing. Waiting range and gap requests queue in rangeQ under
// rangeMu, a mutex range operations share with each other but that item
// operations only touch when range waiters exist (rangeQLen) — and then
// only after their stripe work, never nested inside a stripe latch.
package lock

import (
	"sort"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// RangeHandle identifies a granted key-range lock for later release.
type RangeHandle int64

// fragment is one stripe-local granule of a key-range lock: Shared
// coverage of its anchor key and the gap below it, refined by the scan's
// predicate. All fragments are Shared — scans are reads; writers never
// install persistent range state (an insert's "exclusive gap lock" is the
// AcquireGap conflict check itself, insert-intention style).
type fragment struct {
	tx     TxID
	handle RangeHandle
	pred   predicate.P
}

// fragLoc records where one fragment of a handle lives, for exact release.
type fragLoc struct {
	stripe int
	anchor data.Key
	sup    bool
}

// gapStripeStats counts one stripe's gap-lock activity (under rangeMu).
type gapStripeStats struct {
	grants int64
	waits  int64
}

// RangeSpec describes the key range a scan locks: the predicate being
// protected, the anchors (present keys in [Lo, Hi), ascending — from
// sv.Store.RangeAnchors), and the ceiling (first present key at or above
// Hi; "" anchors the above-range gap at the supremum instead). Bounded
// false means the whole key space.
//
// Snapshot, when set, supersedes the static Anchors/Ceiling: the manager
// calls it at install time, under the range mutex, so the anchor set
// reflects the store at the serialization point of the range lock rather
// than at some earlier moment in the caller — a key inserted and
// committed between a caller-side snapshot and the acquisition would
// otherwise be a permanent hole in the scan's coverage. Queued range
// requests re-snapshot when finally granted, for the same reason.
type RangeSpec struct {
	Pred     predicate.P
	Anchors  []data.Key
	Ceiling  data.Key
	Snapshot func() (anchors []data.Key, ceiling data.Key)
	Lo, Hi   data.Key
	Bounded  bool
}

// covers reports whether key lies in the spec's range.
func (s RangeSpec) covers(key data.Key) bool {
	return !s.Bounded || (s.Lo <= key && key < s.Hi)
}

// AcquireRange acquires a Shared key-range (next-key) lock for tx over
// spec, blocking until no exclusive item holder anywhere has a row image
// satisfying spec.Pred — the same admission rule as AcquirePred, decided
// against per-stripe state instead of a gated global table. The returned
// handle releases the lock. Returns ErrDeadlock under the standard
// requester-is-victim rule.
//
//isolint:allow latchorder the post-install refresh is guarded by rangeQLen/wf.Empty — with no admitted waiter there is no wait edge to go stale — and the back-out path reverts the install and refreshes via drainRangeLocked
func (m *Manager) AcquireRange(tx TxID, spec RangeSpec) (RangeHandle, error) {
	req := &request{tx: tx, mode: S, isRange: true, spec: spec, ready: make(chan error, 1), seq: m.seq.Add(1)}
	m.gate.RLock()
	m.rangeMu.Lock()
	// Count the range before sweeping for conflicts: an insert's fast-path
	// gap check that still reads zero activity is thereby ordered before
	// this sweep, so the sweep (or the recheck an insert runs after its
	// item lock installs — see RecheckGap) is guaranteed to see one side
	// of the race. Every non-holder exit undoes the count.
	m.rangeActivity.Add(1)
	var granted []*request
	on := m.rangeConflictHoldersLocked(req)
	if len(on) == 0 {
		h := m.installRangeLocked(req)
		if again := m.rangeConflictHoldersLocked(req); len(again) != 0 {
			// A conflicting writer latched its stripe between our install
			// visit and the validation sweep (free-running mode only;
			// scripted runs execute one operation at a time). Back out and
			// wait like any other conflicted request — draining the
			// stripes that briefly held our fragments, so an item request
			// that queued behind one of them is re-evaluated rather than
			// stranded.
			touched := m.removeRangeHoldLocked(tx, h)
			granted = m.drainRangeLocked(touched)
			on = again
		} else {
			m.rangeGrants++
			// The new fragments extend the conflict sets of queued item
			// requests in any stripe (and of queued range requests); keep
			// every wait edge current or a later cycle goes undetected.
			// With no admitted waiter anywhere (empty waits-for graph, no
			// queued range request) there is nothing to refresh and the
			// all-stripe sweep is skipped — the common idle-scan case.
			if m.rangeQLen.Load() != 0 || !m.wf.Empty() {
				m.refreshAllRangeAwareLocked()
			}
			m.rangeMu.Unlock()
			m.gate.RUnlock()
			return h, nil
		}
	}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.rangeActivity.Add(-1)
		m.rangeMu.Unlock()
		m.gate.RUnlock()
		m.notifyGranted(granted)
		return 0, ErrDeadlock
	}
	m.rangeQ = append(m.rangeQ, req)
	m.rangeQLen.Store(int64(len(m.rangeQ)))
	// (The entry count from above stays: a queued range request remains
	// counted, and keeps counting as a holder when granted.)
	m.rangeWaits++
	m.notifyWaiting(tx, on)
	m.rangeMu.Unlock()
	m.gate.RUnlock()
	m.notifyGranted(granted)
	if err := m.await(req); err != nil {
		return 0, err
	}
	return req.rhandle, nil
}

// AcquireGap acquires the covering gap's exclusive lock for an insert of
// key (insert-intention style): it blocks while any fragment covering key
// — at the gap's owning anchor or the supremum — belongs to another
// transaction and has a predicate satisfied by the insert's images, and
// on grant inherits the covering fragments onto key so the gap's coverage
// survives the insert. With no range activity it is one atomic load.
func (m *Manager) AcquireGap(tx TxID, key data.Key, im Images) error {
	return m.acquireGap(tx, key, im, true)
}

// RecheckGap re-runs the covering-gap check after the insert's exclusive
// item lock has installed. It closes the free-running race in which a
// scan begins between an insert's (empty) fast-path gap check and the
// item lock install: AcquireRange counts itself before its conflict
// sweep, so either this recheck observes the scan's activity (and waits
// on its fragments under rangeMu), or the scan's sweep observes the
// already-installed item lock (and yields). Scripted runs execute one
// operation at a time, so the recheck is always a no-op there; it is not
// counted in the gap statistics.
func (m *Manager) RecheckGap(tx TxID, key data.Key, im Images) error {
	return m.acquireGap(tx, key, im, false)
}

func (m *Manager) acquireGap(tx TxID, key data.Key, im Images, count bool) error {
	if m.rangeActivity.Load() == 0 {
		return nil
	}
	m.gate.RLock()
	m.rangeMu.Lock()
	frags, anchor, anchored := m.gapCoverLocked(key)
	on := gapConflicts(tx, key, im, frags)
	spIdx := m.stripeIndex(key)
	if len(on) == 0 {
		m.inheritLocked(key, frags, anchor, anchored)
		if count {
			m.gapGrants++
			m.gapStripe[spIdx].grants++
		}
		m.rangeMu.Unlock()
		m.gate.RUnlock()
		return nil
	}
	req := &request{tx: tx, mode: X, isGap: true, key: key, im: im, ready: make(chan error, 1), seq: m.seq.Add(1)}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.rangeMu.Unlock()
		m.gate.RUnlock()
		return ErrDeadlock
	}
	m.rangeQ = append(m.rangeQ, req)
	m.rangeQLen.Store(int64(len(m.rangeQ)))
	m.rangeActivity.Add(1)
	m.gapWaits++
	m.gapStripe[spIdx].waits++
	m.notifyWaiting(tx, on)
	m.rangeMu.Unlock()
	m.gate.RUnlock()
	return m.await(req)
}

// ReleaseRange releases the key-range lock identified by handle, removing
// every fragment it installed (including inherited copies) and draining
// the affected stripes and the range queue.
func (m *Manager) ReleaseRange(tx TxID, h RangeHandle) {
	m.gate.RLock()
	m.rangeMu.Lock()
	touched := m.removeRangeHoldLocked(tx, h)
	m.rangeActivity.Add(-1)
	granted := m.drainRangeLocked(touched)
	m.rangeMu.Unlock()
	m.gate.RUnlock()
	m.notifyGranted(granted)
}

// releaseAllRangeAware is ReleaseAll's path while range activity exists:
// tx's item holds, queued item requests, range holds and queued range/gap
// requests all go, followed by one global-arrival-order drain over every
// stripe that could have been unblocked plus the range queue. Called with
// the gate held shared; releases it.
func (m *Manager) releaseAllRangeAware(tx TxID) {
	m.rangeMu.Lock()
	m.wf.Remove(tx)
	touched := map[int]bool{}
	var cancelled []*request
	for _, spIdx := range m.takeFootprintSorted(tx) {
		sp := m.stripes[spIdx]
		sp.mu.Lock()
		for key := range sp.held[tx] {
			if st := sp.items[key]; st != nil {
				delete(st.holders, tx)
				if len(st.holders) == 0 {
					delete(sp.items, key)
				}
			}
		}
		delete(sp.held, tx)
		cancelled = append(cancelled, cancelQueued(&sp.queue, tx, m.wf)...)
		sp.mu.Unlock()
		touched[spIdx] = true
	}
	rangeTouched, rangeCancelled := m.releaseAllRangesLocked(tx)
	for i := range rangeTouched {
		touched[i] = true
	}
	cancelled = append(cancelled, rangeCancelled...)
	granted := m.drainRangeLocked(touched)
	m.rangeMu.Unlock()
	m.gate.RUnlock()
	m.notifyCancelled(cancelled, tx)
	m.notifyGranted(granted)
}

// HoldingRange reports whether tx holds any key-range lock.
func (m *Manager) HoldingRange(tx TxID) bool {
	m.rangeMu.Lock()
	defer m.rangeMu.Unlock()
	return len(m.rangeHolds[tx]) > 0
}

// rangeConflictHoldersLocked returns the transactions whose granted
// exclusive item locks — in any stripe — have a row image satisfying the
// range's predicate, sorted. The sweep latches one stripe at a time;
// called with rangeMu held.
func (m *Manager) rangeConflictHoldersLocked(req *request) []TxID {
	seen := map[TxID]bool{}
	for _, sp := range m.stripes {
		sp.mu.Lock()
		for key, st := range sp.items {
			for htx, h := range st.holders {
				if htx == req.tx || !conflicts(req.mode, h.mode) {
					continue
				}
				if h.im.matches(req.spec.Pred, key) {
					seen[htx] = true
				}
			}
		}
		sp.mu.Unlock()
	}
	return sortedTxIDs(seen)
}

// installRangeLocked installs req's fragments: one per anchor (plus the
// ceiling anchor, plus any lock-table-resident key in range — a row
// deleted by an uncommitted transaction has no store key but still needs
// record coverage), and a supremum fragment when no ceiling exists.
// Called with rangeMu held; latches one stripe at a time.
//
//isolint:grant-mutator
func (m *Manager) installRangeLocked(req *request) RangeHandle {
	m.rangeHandles++
	h := m.rangeHandles
	req.rhandle = h
	anchors, ceiling := req.spec.Anchors, req.spec.Ceiling
	if req.spec.Snapshot != nil {
		anchors, ceiling = req.spec.Snapshot()
	}
	byStripe := make(map[int]map[data.Key]bool)
	add := func(k data.Key) {
		i := m.stripeIndex(k)
		if byStripe[i] == nil {
			byStripe[i] = map[data.Key]bool{}
		}
		byStripe[i][k] = true
	}
	for _, a := range anchors {
		add(a)
	}
	if ceiling != "" {
		add(ceiling)
	}
	var locs []fragLoc
	for i, sp := range m.stripes {
		sp.mu.Lock()
		set := byStripe[i]
		if set == nil {
			set = map[data.Key]bool{}
		}
		for key := range sp.items {
			if req.spec.covers(key) {
				set[key] = true
			}
		}
		// ... and at every in-range key that already anchors fragments,
		// even when it has left the store (an aborted insert or committed
		// delete leaves other scans' anchors behind). gapCoverLocked
		// consults only the single smallest anchor at or above an insert
		// position, so every live scan must have a fragment at every
		// anchor inside its range — otherwise a stale anchor of one scan
		// shadows another scan's coverage of the same gap.
		for key := range sp.ranges {
			if req.spec.covers(key) {
				set[key] = true
			}
		}
		keys := make([]data.Key, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			if sp.ranges == nil {
				sp.ranges = map[data.Key][]*fragment{}
			}
			sp.ranges[k] = append(sp.ranges[k], &fragment{tx: req.tx, handle: h, pred: req.spec.Pred})
			sp.rangeIdx.Insert(k)
			locs = append(locs, fragLoc{stripe: i, anchor: k})
		}
		sp.mu.Unlock()
	}
	if ceiling == "" {
		m.supFrags = append(m.supFrags, &fragment{tx: req.tx, handle: h, pred: req.spec.Pred})
		locs = append(locs, fragLoc{sup: true})
	}
	if m.rangeHolds == nil {
		m.rangeHolds = map[TxID]map[RangeHandle][]fragLoc{}
	}
	hm := m.rangeHolds[req.tx]
	if hm == nil {
		hm = map[RangeHandle][]fragLoc{}
		m.rangeHolds[req.tx] = hm
	}
	hm[h] = locs
	return h
}

// removeRangeHoldLocked deletes every fragment of (tx, h) and returns the
// set of stripe indexes that lost fragments. Called with rangeMu held.
func (m *Manager) removeRangeHoldLocked(tx TxID, h RangeHandle) map[int]bool {
	touched := map[int]bool{}
	hm := m.rangeHolds[tx]
	locs := hm[h]
	delete(hm, h)
	if len(hm) == 0 {
		delete(m.rangeHolds, tx)
	}
	for _, loc := range locs {
		if loc.sup {
			m.supFrags = dropFragments(m.supFrags, tx, h)
			continue
		}
		sp := m.stripes[loc.stripe]
		sp.mu.Lock()
		if kept := dropFragments(sp.ranges[loc.anchor], tx, h); len(kept) == 0 {
			delete(sp.ranges, loc.anchor)
			sp.rangeIdx.Delete(loc.anchor)
		} else {
			sp.ranges[loc.anchor] = kept
		}
		sp.mu.Unlock()
		touched[loc.stripe] = true
	}
	return touched
}

// releaseAllRangesLocked removes every range hold of tx and cancels its
// queued range/gap requests (ReleaseAll's range side). Returns the touched
// stripes and the cancelled requests. Called with rangeMu held.
func (m *Manager) releaseAllRangesLocked(tx TxID) (map[int]bool, []*request) {
	touched := map[int]bool{}
	//isolint:ordered removals of tx's own distinct handles commute; grants drain afterward in queue order
	for h := range m.rangeHolds[tx] {
		for i := range m.removeRangeHoldLocked(tx, h) {
			touched[i] = true
		}
		m.rangeActivity.Add(-1)
	}
	cancelled := cancelQueued(&m.rangeQ, tx, m.wf)
	m.rangeQLen.Store(int64(len(m.rangeQ)))
	m.rangeActivity.Add(-int64(len(cancelled)))
	return touched, cancelled
}

func dropFragments(frags []*fragment, tx TxID, h RangeHandle) []*fragment {
	kept := frags[:0]
	for _, f := range frags {
		if f.tx != tx || f.handle != h {
			kept = append(kept, f)
		}
	}
	return kept
}

// gapCoverLocked returns the fragments covering an insert at key: those at
// the smallest anchor at or above key (a fragment covers its anchor and
// the gap below it), or the supremum fragments when key lies above every
// anchor. Called with rangeMu held.
func (m *Manager) gapCoverLocked(key data.Key) ([]*fragment, data.Key, bool) {
	var best data.Key
	found := false
	for _, sp := range m.stripes {
		sp.mu.Lock()
		if c, ok := sp.rangeIdx.Ceiling(key); ok && (!found || c < best) {
			best, found = c, true
		}
		sp.mu.Unlock()
	}
	if !found {
		return append([]*fragment(nil), m.supFrags...), "", false
	}
	sp := m.stripeOf(best)
	sp.mu.Lock()
	frags := append([]*fragment(nil), sp.ranges[best]...)
	sp.mu.Unlock()
	return frags, best, true
}

// gapConflicts filters cover fragments down to the conflicting holders: a
// fragment of another transaction whose predicate is satisfied by either
// image of the insert.
func gapConflicts(tx TxID, key data.Key, im Images, frags []*fragment) []TxID {
	seen := map[TxID]bool{}
	for _, f := range frags {
		if f.tx == tx {
			continue
		}
		if im.matches(f.pred, key) {
			seen[f.tx] = true
		}
	}
	return sortedTxIDs(seen)
}

// inheritLocked copies the covering fragments onto key (the next-key
// inheritance of a granted insert), registering each copy under its
// owner's handle so release stays exact. A no-op when key is already the
// covering anchor. Called with rangeMu held.
func (m *Manager) inheritLocked(key data.Key, frags []*fragment, anchor data.Key, anchored bool) {
	if len(frags) == 0 || (anchored && anchor == key) {
		return
	}
	spIdx := m.stripeIndex(key)
	sp := m.stripes[spIdx]
	sp.mu.Lock()
	for _, f := range frags {
		if sp.ranges == nil {
			sp.ranges = map[data.Key][]*fragment{}
		}
		sp.ranges[key] = append(sp.ranges[key], &fragment{tx: f.tx, handle: f.handle, pred: f.pred})
		sp.rangeIdx.Insert(key)
		m.rangeHolds[f.tx][f.handle] = append(m.rangeHolds[f.tx][f.handle], fragLoc{stripe: spIdx, anchor: key})
	}
	sp.mu.Unlock()
}

// fragmentConflictHolders returns the holders of fragments anchored at
// req.key that an exclusive item request conflicts with (image-refined).
// Called with the key's stripe latched.
func fragmentConflictHolders(sp *stripe, req *request) []TxID {
	if req.mode != X || len(sp.ranges) == 0 {
		return nil
	}
	frags := sp.ranges[req.key]
	if len(frags) == 0 {
		return nil
	}
	seen := map[TxID]bool{}
	for _, f := range frags {
		if f.tx == req.tx {
			continue
		}
		if req.im.matches(f.pred, req.key) {
			seen[f.tx] = true
		}
	}
	return sortedTxIDs(seen)
}

// itemConflictHoldersLocked is the fragment-aware item conflict set: the
// same-key item holders plus the holders of fragments anchored at the key.
// Called with the key's stripe latched (or the gate exclusive).
func (m *Manager) itemConflictHoldersLocked(sp *stripe, req *request) []TxID {
	out := itemConflictHolders(sp.items[req.key], req)
	fr := fragmentConflictHolders(sp, req)
	if len(fr) == 0 {
		return out
	}
	seen := map[TxID]bool{}
	for _, tx := range out {
		seen[tx] = true
	}
	for _, tx := range fr {
		seen[tx] = true
	}
	return sortedTxIDs(seen)
}

// drainRangeIfWaiters runs the range-aware drain when any range or gap
// request is queued (one atomic load otherwise). Called with the gate held
// shared and no stripe latch held.
func (m *Manager) drainRangeIfWaiters(touched map[int]bool) []*request {
	if m.rangeQLen.Load() == 0 {
		return nil
	}
	m.rangeMu.Lock()
	granted := m.drainRangeLocked(touched)
	m.rangeMu.Unlock()
	return granted
}

// drainRangeLocked grants every grantable waiter among the touched
// stripes' item queues and the range queue, in global upgrade-first
// arrival order — the same grant order as the gated drainAllLocked, which
// is what keeps the two phantom protocols' wake-up sequences identical —
// then refreshes the wait edges of everything still blocked. Called with
// rangeMu held and no stripe latch held.
func (m *Manager) drainRangeLocked(touched map[int]bool) []*request {
	if touched == nil {
		touched = map[int]bool{}
	}
	var granted []*request
	for {
		// Recomputed each pass: a range grant backed out inside the loop
		// adds the stripes that briefly held its fragments, whose item
		// waiters must be re-evaluated too.
		stripes := make([]int, 0, len(touched))
		for i := range touched {
			stripes = append(stripes, i)
		}
		sort.Ints(stripes)
		var cands []*request
		for _, i := range stripes {
			sp := m.stripes[i]
			sp.mu.Lock()
			for _, r := range sp.queue {
				if len(m.itemConflictHoldersLocked(sp, r)) == 0 {
					cands = append(cands, r)
				}
			}
			sp.mu.Unlock()
		}
		for _, r := range m.rangeQ {
			switch {
			case r.isRange:
				if len(m.rangeConflictHoldersLocked(r)) == 0 {
					cands = append(cands, r)
				}
			case r.isGap:
				frags, _, _ := m.gapCoverLocked(r.key)
				if len(gapConflicts(r.tx, r.key, r.im, frags)) == 0 {
					cands = append(cands, r)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		best := cands[0]
		for _, r := range cands[1:] {
			if r.upgrade != best.upgrade {
				if r.upgrade {
					best = r
				}
				continue
			}
			if r.seq < best.seq {
				best = r
			}
		}
		if m.grantRangeAwareLocked(best, touched) {
			granted = append(granted, best)
		}
	}
	// Edges are refreshed across every stripe, not just the touched ones:
	// a range grant inside the loop installs fragments wherever its
	// anchors live, extending item waiters' conflict sets far beyond the
	// stripes this drain released in. When the drain granted nothing and
	// no waiter exists anywhere — no queued range request and an empty
	// waits-for graph (a queued request with no edges would have been a
	// grantable candidate above) — there are no edges to refresh, and
	// skipping the all-stripe sweep keeps an idle scan from taxing every
	// unrelated release with O(stripes) latch work.
	if len(granted) == 0 && m.rangeQLen.Load() == 0 && m.wf.Empty() {
		return granted
	}
	m.refreshAllRangeAwareLocked()
	return granted
}

// refreshAllRangeAwareLocked recomputes the wait edges of every queued
// request — item queues in every stripe (fragment-aware) and the range
// queue — the range counterpart of the gated refreshAllWaitersLocked.
// Called with rangeMu held.
//
//isolint:waiter-refresh
func (m *Manager) refreshAllRangeAwareLocked() {
	for _, sp := range m.stripes {
		sp.mu.Lock()
		for _, r := range sp.queue {
			m.wf.Refresh(r.tx, m.itemConflictHoldersLocked(sp, r))
		}
		sp.mu.Unlock()
	}
	m.refreshRangeWaitersLocked()
}

// grantRangeAwareLocked installs one drained request, re-verifying its
// conflict set under the final latches (candidates were computed with
// latches released between stripes). Reports whether the grant happened;
// a range back-out adds the stripes that briefly held its fragments to
// the caller's touched set so their waiters are re-evaluated. Called with
// rangeMu held.
//
//isolint:allow latchorder installs are batched — the only caller, drainRangeLocked, runs refreshAllRangeAwareLocked once after the grant loop, before rangeMu is released
func (m *Manager) grantRangeAwareLocked(r *request, touched map[int]bool) bool {
	switch {
	case r.isRange:
		h := m.installRangeLocked(r)
		if again := m.rangeConflictHoldersLocked(r); len(again) != 0 {
			for i := range m.removeRangeHoldLocked(r.tx, h) {
				touched[i] = true
			}
			return false
		}
		m.rangeGrants++
		removeRequest(&m.rangeQ, r)
		m.rangeQLen.Store(int64(len(m.rangeQ)))
	case r.isGap:
		frags, anchor, anchored := m.gapCoverLocked(r.key)
		if len(gapConflicts(r.tx, r.key, r.im, frags)) != 0 {
			return false
		}
		m.inheritLocked(r.key, frags, anchor, anchored)
		spIdx := m.stripeIndex(r.key)
		m.gapGrants++
		m.gapStripe[spIdx].grants++
		removeRequest(&m.rangeQ, r)
		m.rangeQLen.Store(int64(len(m.rangeQ)))
		m.rangeActivity.Add(-1) // gap locks are transient: intent only
	default:
		sp := m.stripeOf(r.key)
		sp.mu.Lock()
		// Re-verify the request is still queued: between the candidate
		// scan and this grant, a concurrent striped-path drain (another
		// release observing rangeActivity already at zero) may have
		// granted it, and installing for an already-woken — possibly
		// already-terminated — transaction would leak an unreleasable
		// lock.
		if !queuedRequest(sp.queue, r) {
			sp.mu.Unlock()
			return false
		}
		if len(m.itemConflictHoldersLocked(sp, r)) != 0 {
			sp.mu.Unlock()
			return false
		}
		m.installItemLocked(sp, r)
		removeRequest(&sp.queue, r)
		sp.mu.Unlock()
	}
	m.wf.Remove(r.tx)
	return true
}

// refreshRangeWaitersLocked recomputes the wait edges of every queued
// range and gap request. Called with rangeMu held.
//
//isolint:waiter-refresh
func (m *Manager) refreshRangeWaitersLocked() {
	for _, r := range m.rangeQ {
		switch {
		case r.isRange:
			m.wf.Refresh(r.tx, m.rangeConflictHoldersLocked(r))
		case r.isGap:
			frags, _, _ := m.gapCoverLocked(r.key)
			m.wf.Refresh(r.tx, gapConflicts(r.tx, r.key, r.im, frags))
		}
	}
}

// queuedRequest reports whether req is still present in q. Called with
// the queue's latch held.
func queuedRequest(q []*request, req *request) bool {
	for _, r := range q {
		if r == req {
			return true
		}
	}
	return false
}

func sortedTxIDs(seen map[TxID]bool) []TxID {
	if len(seen) == 0 {
		return nil
	}
	out := make([]TxID, 0, len(seen))
	for tx := range seen {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
