package lock

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// keysOnDistinctStripes returns n keys that all hash to different stripes
// of m (the stripe seed is random per manager, so tests probe instead of
// hard-coding key names).
func keysOnDistinctStripes(t *testing.T, m *Manager, n int) []data.Key {
	t.Helper()
	if n > m.ShardCount() {
		t.Fatalf("cannot place %d keys on %d stripes", n, m.ShardCount())
	}
	used := map[int]bool{}
	var out []data.Key
	for i := 0; len(out) < n && i < 10000; i++ {
		k := data.Key(fmt.Sprintf("probe:%d", i))
		if s := m.stripeIndex(k); !used[s] {
			used[s] = true
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d distinct-stripe keys", len(out), n)
	}
	return out
}

// Concurrent disjoint-key grants must spread across stripes: the
// per-stripe counters prove the requests did not funnel through one lock
// table. Run with -race this also hammers the shared-gate item path.
func TestDisjointKeyGrantsSpreadAcrossStripes(t *testing.T) {
	m := NewManagerShards(8)
	keys := keysOnDistinctStripes(t, m, 4)
	var wg sync.WaitGroup
	for i, key := range keys {
		wg.Add(1)
		go func(tx TxID, key data.Key) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := m.AcquireItem(tx, key, X, Images{}); err != nil {
					t.Errorf("T%d: %v", tx, err)
					return
				}
				m.ReleaseItem(tx, key)
			}
		}(TxID(i+1), key)
	}
	wg.Wait()
	st := m.Stats()
	if st.Grants != int64(len(keys)*200) {
		t.Fatalf("grants = %d, want %d", st.Grants, len(keys)*200)
	}
	busy := 0
	for _, ss := range st.PerStripe {
		if ss.Grants > 0 {
			busy++
		}
		if ss.Waits != 0 {
			t.Fatalf("disjoint keys should never wait, stripe stats = %+v", st.PerStripe)
		}
	}
	if busy != len(keys) {
		t.Fatalf("grants landed on %d stripes, want %d (per-stripe: %+v)", busy, len(keys), st.PerStripe)
	}
}

// A predicate lock must conflict with matching item writes in every
// stripe, not just one.
func TestPredicateConflictSpansStripes(t *testing.T) {
	m := NewManagerShards(8)
	keys := keysOnDistinctStripes(t, m, 3)
	p := predicate.MustParse("active == 1")
	h, err := m.AcquirePred(1, p, S)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, len(keys))
	for i, key := range keys {
		go func(tx TxID, key data.Key) {
			done <- m.AcquireItem(tx, key, X, Images{After: data.Row{"active": 1}})
		}(TxID(i+2), key)
	}
	select {
	case err := <-done:
		t.Fatalf("matching insert crossed the predicate lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleasePred(1, h)
	for range keys {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(time.Second):
			t.Fatal("insert never granted after predicate release")
		}
	}
	st := m.Stats()
	if st.PredGrants != 1 || st.Waits != int64(len(keys)) {
		t.Fatalf("stats = %+v", st)
	}
}

// A deadlock whose cycle spans stripes must still be detected, with the
// requester that closes the cycle as the victim.
func TestMultiStripeDeadlockRequesterVictim(t *testing.T) {
	m := NewManagerShards(8)
	keys := keysOnDistinctStripes(t, m, 3)
	for i, key := range keys {
		if err := m.AcquireItem(TxID(i+1), key, X, Images{}); err != nil {
			t.Fatal(err)
		}
	}
	// T1 waits on T2's key, T2 on T3's key: a chain across three stripes.
	e1 := make(chan error, 1)
	e2 := make(chan error, 1)
	go func() { e1 <- m.AcquireItem(1, keys[1], X, Images{}) }()
	waitForQueue(t, m, 1)
	go func() { e2 <- m.AcquireItem(2, keys[2], X, Images{}) }()
	waitForQueue(t, m, 2)
	// T3 closing the cycle back to T1's key is the victim, immediately.
	if err := m.AcquireItem(3, keys[0], X, Images{}); err != ErrDeadlock {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	if got := m.Stats().Deadlocks; got != 1 {
		t.Fatalf("deadlocks = %d, want 1", got)
	}
	m.ReleaseAll(3)
	if err := <-e2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-e1; err != nil {
		t.Fatal(err)
	}
}

func waitForQueue(t *testing.T, m *Manager, n int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for m.QueueLen() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The full conflict matrix must behave identically at every stripe count,
// including shards=1 (the old single-latch manager).
func TestShardSweepBehaviorParity(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m := NewManagerShards(shards)
			if got := m.ShardCount(); got != max(1, shards) {
				t.Fatalf("ShardCount = %d", got)
			}
			// S+S compatible; X blocks; upgrade deadlock detected.
			if err := m.AcquireItem(1, "x", S, Images{}); err != nil {
				t.Fatal(err)
			}
			if err := m.AcquireItem(2, "x", S, Images{}); err != nil {
				t.Fatal(err)
			}
			first := make(chan error, 1)
			go func() { first <- m.AcquireItem(1, "x", X, Images{}) }()
			waitForQueue(t, m, 1)
			if err := m.AcquireItem(2, "x", X, Images{}); err != ErrDeadlock {
				t.Fatalf("second upgrader got %v, want ErrDeadlock", err)
			}
			m.ReleaseAll(2)
			if err := <-first; err != nil {
				t.Fatal(err)
			}
			if mode, _ := m.Holding(1, "x"); mode != X {
				t.Fatal("upgrade did not take effect")
			}
			st := m.Stats()
			// One admitted upgrade (the survivor); the victim's upgrade
			// request was refused, not admitted.
			if st.Upgrades != 1 || st.Deadlocks != 1 {
				t.Fatalf("stats = %+v", st)
			}
			m.ReleaseAll(1)
			// Predicate-vs-item conflict still caught at this stripe count.
			h, err := m.AcquirePred(1, predicate.MustParse("a == 1"), S)
			if err != nil {
				t.Fatal(err)
			}
			blocked := make(chan error, 1)
			go func() { blocked <- m.AcquireItem(2, "phantom", X, Images{After: data.Row{"a": 1}}) }()
			select {
			case err := <-blocked:
				t.Fatalf("phantom insert not blocked: %v", err)
			case <-time.After(50 * time.Millisecond):
			}
			m.ReleasePred(1, h)
			if err := <-blocked; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Mixed predicate and item traffic under -race across stripes: writers
// hammer disjoint keys while a scanner repeatedly takes and drops a
// predicate lock that covers half of them. Every acquire must return and
// every conflict window must stay consistent (no torn grants).
func TestPredicateVsItemStress(t *testing.T) {
	m := NewManagerShards(8)
	p := predicate.MustParse("active == 1")
	stop := make(chan struct{})
	scannerDone := make(chan struct{})
	go func() {
		defer close(scannerDone)
		tx := TxID(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h, err := m.AcquirePred(tx, p, S)
			if err != nil {
				t.Errorf("pred: %v", err)
				return
			}
			m.ReleasePred(tx, h)
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(tx TxID) {
			defer writers.Done()
			key := data.Key(fmt.Sprintf("stress:%d", tx))
			active := int64(tx % 2)
			for i := 0; i < 300; i++ {
				if err := m.AcquireItem(tx, key, X, Images{After: data.Row{"active": active}}); err != nil {
					t.Errorf("T%d: %v", tx, err)
					return
				}
				m.ReleaseItem(tx, key)
			}
		}(TxID(w + 1))
	}
	writersDone := make(chan struct{})
	go func() { writers.Wait(); close(writersDone) }()
	select {
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stress hung: lost wakeup or undetected deadlock")
	}
	close(stop)
	select {
	case <-scannerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("scanner hung")
	}
}

// WaitsFor unit coverage: atomic check-and-add, refresh, removal.
func TestWaitsForGraph(t *testing.T) {
	g := NewWaitsFor()
	if !g.AddWaiter(1, []TxID{2}) {
		t.Fatal("first edge refused")
	}
	if !g.AddWaiter(2, []TxID{3}) {
		t.Fatal("chain edge refused")
	}
	if g.AddWaiter(3, []TxID{1}) {
		t.Fatal("cycle not refused")
	}
	if g.Waiting(3) {
		t.Fatal("refused waiter recorded")
	}
	// After T2 is granted, the same request no longer closes a cycle.
	g.Remove(2)
	if !g.AddWaiter(3, []TxID{1}) {
		t.Fatal("edge refused after cycle broken")
	}
	g.Refresh(3, nil)
	if g.Waiting(3) {
		t.Fatal("empty refresh should clear the node")
	}
}
