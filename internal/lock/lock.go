// Package lock implements the lock scheduler of the paper's §2.3:
// Read (Share) and Write (Exclusive) locks on data items and on predicates,
// with short or long durations chosen by the isolation level (Table 2).
//
// Conflict rules follow the paper:
//
//   - Two item locks by different transactions on the same item conflict if
//     at least one is a Write lock.
//   - A predicate lock is effectively a lock on all data items satisfying
//     the <search condition>, including phantoms. A predicate lock and an
//     item lock by different transactions conflict (when one is a Write
//     lock) if the item's row image — before or after image for writes,
//     current image for reads — satisfies the predicate.
//   - Two predicate locks by different transactions conflict if one is a
//     Write lock and the predicates are not provably disjoint (a
//     conservative approximation of "there is a possibly phantom data item
//     covered by both", which is the only sound direction: it can only
//     strengthen an isolation level).
//
// Waiting requests are queued first-come-first-served (lock upgrades jump
// the queue, which is the standard way to shrink the upgrade deadlock
// window). Deadlocks are detected immediately on the waits-for graph when a
// request would block; the requester is the victim and receives
// ErrDeadlock. An Observer can be registered to learn, deterministically,
// when a transaction starts waiting — the schedule runner uses this instead
// of timeouts.
//
// # Striping
//
// The item lock tables are sharded: keys hash onto a fixed set of stripes
// (the same scheme as mv.NewStoreShards), each stripe holding its own lock
// table, wait queue and latch, so lock traffic on disjoint key stripes
// never serializes. Predicate locks cannot live in any one stripe — a
// predicate lock conflicts with item locks in every stripe its predicate
// covers — so predicate state sits in a dedicated cross-stripe table
// guarded by a shared-exclusive gate over the stripe set: item operations
// run under the shared side (per-stripe latches provide their mutual
// exclusion), while predicate operations take the exclusive side and with
// it a stable view of every stripe. While no predicate lock is held or
// wanted (tracked by one atomic counter) item operations never touch the
// gate's exclusive side at all, which is what lets disjoint-key workloads
// scale with the stripe count.
//
// # Phantom prevention: two protocols
//
// The gated predicate table above is the paper's literal §2.3 mechanism.
// The manager also implements the practical alternative real schedulers
// use: key-range (next-key) locking (keyrange.go) — AcquireRange decomposes
// a scan's phantom protection into per-stripe next-key fragments over the
// existing keys and gaps of its predicate's key range, and AcquireGap gives
// inserts the covering gap's exclusive lock. Fragment conflicts are refined
// by the same before/after-image rule as predicate locks, which makes the
// two protocols behaviorally equivalent (same blocking, same waits-for
// edges, same deadlock victims — the differential fuzzer runs both engine
// families over identical schedules to hold them to that); the difference
// is purely structural: key-range state lives in the stripes, so no path of
// the keyrange protocol ever takes the gate's exclusive side
// (Stats.GateAcquires stays zero) and disjoint-key writers keep scaling
// with the stripe count while a scan is live.
//
// Deadlock detection lives in a standalone waits-for graph (waitsfor.go)
// that collects wait edges from all stripes under its own lock, preserving
// the deterministic requester-is-victim rule across stripes.
//
// # Latch hierarchy
//
// The manager's internal latches form a fixed acquisition order, declared
// below as machine-readable //isolint:latch-order directives — the single
// source of truth the latchorder analyzer (internal/analysis) enforces at
// lint time. A latch may only be taken while latches earlier in a chain
// are held, never later ones:
//
//   - Manager.gate, the stripe-set shared/exclusive gate, is the outermost:
//     every item/predicate path enters through it.
//   - Manager.rangeMu, the key-range table latch, nests inside the gate's
//     shared side (range ops never take the gate exclusively).
//   - stripe.mu, the per-stripe lock-table latch, nests inside both; the
//     one-stripe-at-a-time discipline means two stripe latches are never
//     held together.
//   - WaitsFor.mu, the waits-for graph latch, is innermost on the main
//     chain: wait edges are recorded while the enclosing table latch
//     pins the queue being inspected.
//   - footprintSlot.mu, the per-transaction footprint latch, nests inside
//     stripe.mu on the release fast path.
//   - Manager.parkMu, the waiter parking latch, is a leaf: parking happens
//     strictly after the tables' latches are dropped, so it is never held
//     together with any of the above.
//
// The same analyzer checks lock/unlock pairing on every control-flow path
// and the install-then-refresh discipline: functions installing granted
// lock state are marked //isolint:grant-mutator, functions recomputing
// waiters' waits-for edges are marked //isolint:waiter-refresh, and every
// path from an install to a return must pass a refresh — the missed
// refreshAllRangeAwareLocked hang the key-range work was reviewed for
// cannot reappear silently.
//
//isolint:latch-order Manager.gate < Manager.rangeMu < stripe.mu < WaitsFor.mu
//isolint:latch-order stripe.mu < footprintSlot.mu
//isolint:latch-leaf Manager.parkMu
//isolint:deterministic
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/obs"
	"isolevel/internal/predicate"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes: Shared (read) and Exclusive (write).
const (
	S Mode = iota
	X
)

func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// conflicts reports whether two modes held by different transactions
// conflict: at least one Write lock.
func conflicts(a, b Mode) bool { return a == X || b == X }

// TxID identifies a transaction to the lock manager.
type TxID int

// ErrDeadlock is returned to a requester whose wait would close a cycle in
// the waits-for graph. The requester is always the victim (deterministic).
var ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")

// Observer receives wait-state notifications. Callbacks must be cheap and
// must not call back into the manager: TxWaiting runs with the enqueue
// latch held, which is what makes the event order causal — a request's
// TxWaiting is always observable before the TxGranted that answers it,
// and a grant is observable before the releasing operation that caused it
// returns. The schedule runner's quiescence protocol depends on exactly
// those two orderings.
type Observer interface {
	// TxWaiting fires on the requesting goroutine when tx's request
	// enqueues behind conflicting holders, before the wait begins.
	TxWaiting(tx TxID, on []TxID)
	// TxGranted fires on the granting goroutine when a previously waiting
	// request is granted, before the waiter wakes.
	TxGranted(tx TxID)
}

// Images carries the row images a lock request exposes for predicate
// conflict checks: Before/After for writes (nil Before = insert, nil After
// = delete), Before = current row for reads.
type Images struct {
	Before, After data.Row
}

// matches reports whether p covers either image at key.
func (im Images) matches(p predicate.P, key data.Key) bool {
	return predicate.MatchEither(p, key, im.Before, im.After)
}

// holder records one transaction's granted item lock.
type holder struct {
	mode Mode
	refs int
	im   Images
	// reserved marks a hold installed by the holder's own granted gap
	// request (grantRangeAwareLocked): the gap grant is the key-range
	// protocol's atomic acquisition point, mirroring the predicate twin's
	// single item acquisition, so the item hold is installed together with
	// the gap inheritance — otherwise another writer could take the item
	// between the gap grant and the insert's item acquisition,
	// manufacturing a deadlock cycle the predicate protocol cannot
	// produce. The insert's follow-up AcquireItem consumes the
	// reservation refs-neutrally.
	reserved bool
}

// itemState is the lock table entry for one data item.
type itemState struct {
	holders map[TxID]*holder
}

// PredHandle identifies a granted predicate lock for later release.
type PredHandle int64

// predState is a granted predicate lock.
type predState struct {
	tx   TxID
	mode Mode
	pred predicate.P
	refs int
}

// request is a pending lock request.
type request struct {
	tx      TxID
	mode    Mode
	isPred  bool
	isRange bool
	isGap   bool
	key     data.Key
	pred    predicate.P
	// spec is the key range of an isRange request.
	spec    RangeSpec
	im      Images
	upgrade bool
	ready   chan error
	// handle receives the predicate handle on grant; rhandle the range one.
	handle  PredHandle
	rhandle RangeHandle
	seq     int64
	// obsStart is the sink-clock instant this request started waiting
	// (set only when a sink is attached; 0 means never waited).
	obsStart int64
}

// StripeStats counts one stripe's item-lock activity — the per-stripe
// contention map of a run.
type StripeStats struct {
	// Grants counts item lock grants (immediate, re-acquired or dequeued)
	// on this stripe.
	Grants int64
	// Waits counts item requests that had to queue on this stripe.
	Waits int64
	// GapGrants / GapWaits count gap-lock acquisitions by inserts whose
	// key lands in this stripe — the per-stripe contention map of
	// key-range phantom prevention.
	GapGrants int64
	GapWaits  int64
}

// Stats counts manager activity for benchmarks and reports.
type Stats struct {
	// Grants is the total number of lock grants, item and predicate.
	Grants int64
	// Waits is the total number of requests that had to queue.
	Waits int64
	// Deadlocks counts requests refused with ErrDeadlock.
	Deadlocks int64
	// Upgrades counts S->X upgrade requests admitted (granted immediately
	// or queued ahead of non-upgrades).
	Upgrades int64
	// PredGrants / PredWaits break out the predicate-lock share of
	// Grants / Waits.
	PredGrants int64
	PredWaits  int64
	// RangeGrants / RangeWaits break out the key-range (next-key) scan
	// locks, and GapGrants / GapWaits the covering-gap acquisitions of
	// inserts under range activity (see keyrange.go).
	RangeGrants int64
	RangeWaits  int64
	GapGrants   int64
	GapWaits    int64
	// Escalations counts handle×stripe lock escalations: fragment sets
	// collapsed into a coarse whole-stripe entry (zero unless the manager
	// was configured with SetEscalation).
	Escalations int64
	// FragGCs counts fragment-GC sweeps; FragsReclaimed counts fragments
	// the sweeps deduplicated away while migrating dead anchors.
	FragGCs        int64
	FragsReclaimed int64
	// GateAcquires counts exclusive acquisitions of the cross-stripe
	// predicate gate — the serialization events of predicate-table phantom
	// prevention. Key-range locking never takes the exclusive gate, so on
	// a keyrange engine this stays zero; the bench output prints it as the
	// direct evidence.
	GateAcquires int64
	// PerStripe is the item-lock activity of each stripe, indexed by
	// stripe number.
	PerStripe []StripeStats
}

// DefaultShards is the stripe count of NewManager — the same default as
// the multiversion store's, so one `-shards` knob means the same thing to
// every engine family.
const DefaultShards = 16

const footprintSlots = 64

type footprintSlot struct {
	mu sync.Mutex
	m  map[TxID]map[int]struct{} // tx -> stripe indices ever touched
}

func (m *Manager) footprintSlotOf(tx TxID) *footprintSlot {
	idx := int(tx) % footprintSlots
	if idx < 0 {
		idx += footprintSlots
	}
	return &m.footprints[idx]
}

// noteFootprint records that tx has a lock or a queued request on stripe
// spIdx.
func (m *Manager) noteFootprint(tx TxID, spIdx int) {
	fs := m.footprintSlotOf(tx)
	fs.mu.Lock()
	if fs.m == nil {
		fs.m = map[TxID]map[int]struct{}{}
	}
	set := fs.m[tx]
	if set == nil {
		set = map[int]struct{}{}
		fs.m[tx] = set
	}
	set[spIdx] = struct{}{}
	fs.mu.Unlock()
}

// takeFootprintSorted returns and clears tx's touched-stripe set as a
// sorted slice. The order matters: ReleaseAll visits stripes in it, so it
// fixes the order released locks grant queued waiters — and with grant
// parking, the order those waiters later resume. Map iteration here would
// reintroduce run-to-run nondeterminism.
func (m *Manager) takeFootprintSorted(tx TxID) []int {
	set := m.takeFootprint(tx)
	out := make([]int, 0, len(set))
	for spIdx := range set {
		out = append(out, spIdx)
	}
	sort.Ints(out)
	return out
}

// takeFootprint returns and clears tx's touched-stripe set.
func (m *Manager) takeFootprint(tx TxID) map[int]struct{} {
	fs := m.footprintSlotOf(tx)
	fs.mu.Lock()
	set := fs.m[tx]
	delete(fs.m, tx)
	fs.mu.Unlock()
	return set
}

// stripe is one shard of the item lock table: its own lock table, wait
// queue and latch. held tracks which keys each transaction holds in this
// stripe so ReleaseAll is O(held keys), not O(table).
type stripe struct {
	idx   int
	mu    sync.Mutex
	items map[data.Key]*itemState
	held  map[TxID]map[data.Key]struct{}
	queue []*request // waiting item requests: upgrades first, then arrival order

	// frags holds the key-range fragments anchored in this stripe as one
	// slice sorted by anchor key, entries with equal anchors adjacent
	// (keyrange.go). One ordered structure replaces the old
	// map[anchor][]*fragment + mirror index pair: installs merge a sorted
	// per-stripe key run in a single pass, the covering-anchor lookup of a
	// gap check is one binary search, and releases filter in place — no
	// per-anchor map churn, no per-fragment heap nodes.
	//
	// Guard discipline: frags (and coarse) are written only while BOTH
	// rangeMu and this stripe's latch are held, so a reader holding either
	// one sees consistent state — item paths read under the stripe latch
	// they already hold, range paths under rangeMu alone (gapCoverLocked
	// returns zero-copy views on that basis).
	frags []anchoredFrag

	// coarse holds whole-stripe escalated range entries (keyrange.go): when
	// a handle's fragment count in this stripe crosses the escalation
	// threshold, its per-anchor fragments collapse into one entry here that
	// conflicts with every other transaction's exclusive item request in
	// the stripe, unrefined — the [GLPT]-style coarser granule. Same guard
	// discipline as frags.
	coarse []fragment

	grants int64
	waits  int64
}

// Manager is a striped lock manager. The zero value is not usable; use
// NewManager or NewManagerShards.
type Manager struct {
	striper data.Striper
	stripes []*stripe

	// gate is the shared-exclusive gate over the stripe set. Item
	// operations hold it shared (stripe latches give them mutual
	// exclusion); predicate operations — whose conflicts span every
	// stripe — and item operations racing predicate state hold it
	// exclusively, quiescing the stripes.
	gate sync.RWMutex

	// predActivity counts predicate holders plus queued predicate
	// requests. It changes only under the exclusive gate; item fast paths
	// read it under the shared gate, where zero is stable and means no
	// predicate conflict is possible and no release can unblock one.
	predActivity atomic.Int64

	// preds and predQ are the cross-stripe predicate-lock table and its
	// wait queue; handles generates PredHandles. All three are touched
	// only under the exclusive gate.
	preds   map[PredHandle]*predState
	predQ   []*request
	handles PredHandle

	// Key-range locking state (keyrange.go). rangeMu orders range
	// operations against each other; item operations never take it from
	// inside a stripe latch, and only at all while range waiters exist
	// (rangeQLen) or fragments are live (rangeActivity — the predActivity
	// pattern). rangeHolds, rangeQ, supFrags, gapCoarse, gapStripe, the
	// range/gap counters and every scratch buffer below are touched only
	// under rangeMu; fragments themselves (stripe.frags/coarse) are written
	// under rangeMu plus the stripe's latch and readable under either (see
	// the stripe fields).
	rangeMu       sync.Mutex
	rangeQ        []*request
	rangeQLen     atomic.Int64
	rangeActivity atomic.Int64
	rangeHolds    map[TxID]map[RangeHandle]*rangeHold
	rangeHandles  RangeHandle
	supFrags      []fragment
	gapStripe     []gapStripeStats
	rangeGrants   int64
	rangeWaits    int64
	gapGrants     int64
	gapWaits      int64

	// escalation is the lock-escalation threshold: a handle whose fragment
	// count in one stripe reaches it collapses to a coarse entry
	// (stripe.coarse + gapCoarse). Zero disables escalation — the default,
	// preserving exact predicate↔keyrange equivalence. Set before use.
	escalation  int
	escalations int64 // under rangeMu

	// gapCoarse holds one unrefined entry per escalated handle: it
	// conflicts with every other transaction's gap (insert) check anywhere
	// in the key space — the gap side of the coarser granule. Under rangeMu.
	gapCoarse []fragment

	// rowPresent, when set (SetRowPresent), lets the fragment GC decide
	// whether an anchor key still has a row in the store. Nil disables the
	// sweep. inheritsSinceGC counts fragment inheritances since the last
	// sweep; fragGCs / fragsReclaimed count sweeps and deduplicated-away
	// fragments. All under rangeMu.
	rowPresent      func(data.Key) bool
	inheritsSinceGC int
	fragGCs         int64
	fragsReclaimed  int64

	// Install/release scratch, reused across range operations so a
	// steady-state scan install allocates nothing: per-stripe anchor
	// buckets, the per-stripe merged run, in-range item keys, existing
	// in-range anchors, fragment copy buffers (inheritance and GC), the
	// anchor-snapshot run buffer, GC candidate keys, and the rangeHold
	// free-list. All under rangeMu — no latch of their own.
	runBuckets [][]data.Key
	mergeRun   []data.Key
	itemKeys   []data.Key
	anchorKeys []data.Key
	newAnchors []data.Key
	fragCopy   []fragment
	snapRuns   data.KeyRuns
	gcKeys     []data.Key
	holdFree   []*rangeHold

	gateAcquires atomic.Int64

	wf *WaitsFor

	// footprints records, per transaction, the set of stripes where the
	// transaction has ever held or queued an item lock, so ReleaseAll
	// visits only those stripes instead of all of them. Entries are
	// add-only until ReleaseAll deletes them (a superset is always safe).
	// Slots are striped by transaction id: transactions are
	// single-goroutine, so distinct transactions rarely share a slot latch.
	footprints [footprintSlots]footprintSlot

	seq      atomic.Int64
	observer Observer

	// obs is the optional observability sink (SetObs). Nil — the default —
	// keeps every hook a single pointer check: no clock reads, no events,
	// no histogram traffic on the hot paths.
	obs *obs.Sink

	// Grant parking (ParkGrants/DeliverNextGrant): withheld waiter
	// wake-ups, FIFO in grant-decision order.
	parkMu  sync.Mutex
	parking bool
	parked  []parkedSend

	deadlocks  atomic.Int64
	upgrades   atomic.Int64
	predGrants int64 // under the exclusive gate
	predWaits  int64 // under the exclusive gate
}

// NewManager returns an empty lock manager with DefaultShards stripes.
func NewManager() *Manager { return NewManagerShards(DefaultShards) }

// NewManagerShards returns an empty lock manager striped across n lock
// tables (n < 1 is treated as 1; n = 1 reproduces the old single-latch
// behavior and is the baseline of the shard-sweep benchmarks).
func NewManagerShards(n int) *Manager {
	striper := data.NewStriper(n)
	m := &Manager{
		striper:    striper,
		stripes:    make([]*stripe, striper.Count()),
		preds:      map[PredHandle]*predState{},
		gapStripe:  make([]gapStripeStats, striper.Count()),
		runBuckets: make([][]data.Key, striper.Count()),
		wf:         NewWaitsFor(),
	}
	for i := range m.stripes {
		m.stripes[i] = &stripe{
			idx:   i,
			items: map[data.Key]*itemState{},
			held:  map[TxID]map[data.Key]struct{}{},
		}
	}
	return m
}

// ShardCount returns the number of lock-table stripes.
func (m *Manager) ShardCount() int { return len(m.stripes) }

func (m *Manager) stripeIndex(key data.Key) int { return m.striper.Index(key) }

func (m *Manager) stripeOf(key data.Key) *stripe {
	return m.stripes[m.stripeIndex(key)]
}

// SetObserver installs the wait observer. Must be called before concurrent
// use.
func (m *Manager) SetObserver(o Observer) { m.observer = o }

// SetObs attaches an observability sink: wait/grant/upgrade/escalate/
// GC-sweep/deadlock events for its flight recorder, wait-latency and
// gate/rangeMu-hold histograms. Nil detaches. Must be called before
// concurrent use, like SetObserver.
func (m *Manager) SetObs(s *obs.Sink) { m.obs = s }

// obsClass maps a request to its event lock class.
func obsClass(req *request) string {
	switch {
	case req.isPred:
		return obs.ClassPred
	case req.isRange:
		return obs.ClassRange
	case req.isGap:
		return obs.ClassGap
	}
	return obs.ClassItem
}

// obsWait stamps req's wait start on the sink clock and records the wait
// event. Called with the enqueue latch still held, right after
// notifyWaiting, so flight-recorder order matches the observer's causal
// order (the sink's internal lock is strictly innermost — it never calls
// back into the manager).
func (m *Manager) obsWait(req *request, on []TxID, stripe int) {
	if m.obs == nil {
		return
	}
	req.obsStart = m.obs.Now()
	first := TxID(0)
	if len(on) > 0 {
		first = on[0]
	}
	m.obs.Wait(obsClass(req), int(req.tx), string(req.key), stripe, int(first))
}

// obsGranted records a formerly waiting request's grant event and its
// wait latency. Called from the grant-notification paths, outside all
// manager latches.
func (m *Manager) obsGranted(req *request) {
	if m.obs == nil || req.obsStart == 0 {
		return
	}
	stripe := -1
	if !req.isPred && !req.isRange {
		stripe = m.stripeIndex(req.key)
	}
	m.obs.Granted(obsClass(req), int(req.tx), string(req.key), stripe, req.obsStart)
}

// obsDeadlock records tx's selection as deadlock victim, recovering the
// waits-for cycle that refusing its request avoided. Called at the
// AddWaiter-refusal sites with the enclosing table latch still held (the
// graph still holds the refusing state there, so the recovered cycle is
// exact).
func (m *Manager) obsDeadlock(tx TxID, on []TxID) {
	if m.obs == nil {
		return
	}
	cycle := m.wf.CycleFrom(tx, on)
	out := make([]int, len(cycle))
	for i, t := range cycle {
		out[i] = int(t)
	}
	m.obs.Deadlock(int(tx), out)
}

// SetEscalation sets the lock-escalation threshold: when one range
// handle's fragment count in a single stripe reaches threshold — at
// install, or later through gap inheritance — the fragments collapse into
// one coarse whole-stripe entry plus one global gap entry, both unrefined
// ([GLPT]-style: the coarser granule keeps the lock's mode but drops the
// predicate refinement, so blocking is strictly coarser and every conflict
// the fine granules would have found is still found). Zero (the default)
// disables escalation. Must be called before concurrent use.
func (m *Manager) SetEscalation(threshold int) { m.escalation = threshold }

// SetRowPresent gives the fragment GC its liveness oracle: f reports
// whether a row currently exists at a key. With it set, drains
// periodically sweep dead anchors — anchor keys with no row, no item-lock
// entry and no queued item request — migrating their fragments to the next
// live anchor (or the supremum), so inherited fragments from insert storms
// under a long scan don't accumulate until ReleaseAll. Nil (the default)
// disables the sweep. Must be called before concurrent use.
func (m *Manager) SetRowPresent(f func(data.Key) bool) { m.rowPresent = f }

// Stats returns a snapshot of manager counters.
func (m *Manager) Stats() Stats {
	m.gate.RLock()
	defer m.gate.RUnlock()
	st := Stats{
		Deadlocks:    m.deadlocks.Load(),
		Upgrades:     m.upgrades.Load(),
		PredGrants:   m.predGrants,
		PredWaits:    m.predWaits,
		GateAcquires: m.gateAcquires.Load(),
		PerStripe:    make([]StripeStats, len(m.stripes)),
	}
	m.rangeMu.Lock()
	st.RangeGrants, st.RangeWaits = m.rangeGrants, m.rangeWaits
	st.GapGrants, st.GapWaits = m.gapGrants, m.gapWaits
	st.Escalations = m.escalations
	st.FragGCs, st.FragsReclaimed = m.fragGCs, m.fragsReclaimed
	for i := range m.gapStripe {
		st.PerStripe[i].GapGrants = m.gapStripe[i].grants
		st.PerStripe[i].GapWaits = m.gapStripe[i].waits
	}
	m.rangeMu.Unlock()
	for i, sp := range m.stripes {
		sp.mu.Lock()
		st.PerStripe[i].Grants = sp.grants
		st.PerStripe[i].Waits = sp.waits
		sp.mu.Unlock()
		st.Grants += st.PerStripe[i].Grants
		st.Waits += st.PerStripe[i].Waits
	}
	st.Grants += st.PredGrants + st.RangeGrants + st.GapGrants
	st.Waits += st.PredWaits + st.RangeWaits + st.GapWaits
	return st
}

// AcquireItem acquires an item lock for tx on key with the given mode and
// row images, blocking until granted. Re-acquisition by the same holder is
// reference-counted; an S→X upgrade waits only on other holders and jumps
// the queue. Returns ErrDeadlock if waiting would close a waits-for cycle.
func (m *Manager) AcquireItem(tx TxID, key data.Key, mode Mode, im Images) error {
	m.gate.RLock()
	if m.predActivity.Load() == 0 {
		// Striped fast path: no predicate lock is held or wanted, so the
		// only possible conflicts are same-key item locks in key's stripe.
		return m.acquireItemStriped(tx, key, mode, im)
	}
	m.gate.RUnlock()
	return m.acquireItemGated(tx, key, mode, im)
}

// acquireItemStriped is the shared-gate item path. Called with the gate
// held shared; releases it before blocking or returning.
func (m *Manager) acquireItemStriped(tx TxID, key data.Key, mode Mode, im Images) error {
	sp := m.stripeOf(key)
	sp.mu.Lock()
	st := sp.items[key]
	if st == nil {
		st = &itemState{holders: map[TxID]*holder{}}
		sp.items[key] = st
	}
	if h, ok := st.holders[tx]; ok && h.reserved {
		// Consume the reservation the transaction's own gap grant
		// installed: the hold already exists and was counted as one
		// grant, so this follow-up acquisition only merges the images
		// and finalizes the mode — refs-neutral, and no drain: the
		// images equal the ones the grant already refreshed with.
		h.reserved = false
		if mode == X {
			h.mode = X
		}
		h.im = mergeImages(h.im, im)
		sp.mu.Unlock()
		m.gate.RUnlock()
		return nil
	}
	// Covering re-acquires (the holder's mode already covers the request)
	// deliberately take the full conflict path: the new images may extend
	// the holder's fragment-conflict surface — a delete whose images
	// matched no scanned range grants the X lock, and the same
	// transaction's re-insert of the key can land inside one — so every
	// acquisition sweeps conflicts with its own images before the install
	// merges them (installItemLocked turns the covering case into a
	// refs++ merge).
	req := &request{tx: tx, mode: mode, key: key, im: im, ready: make(chan error, 1), seq: m.seq.Add(1)}
	if h, ok := st.holders[tx]; ok && h.mode == S && mode == X {
		req.upgrade = true
	}
	on := m.itemConflictHoldersLocked(sp, req)
	if len(on) == 0 {
		m.countUpgrade(req)
		m.installItemLocked(sp, req)
		// The fresh holder may extend the conflict sets of requests
		// already queued on this stripe; keep their wait edges current.
		m.refreshStripeWaitersLocked(sp)
		sp.mu.Unlock()
		// ... and of queued range and gap requests: range conflicts span
		// every stripe's exclusive holders, and a queued gap request
		// blocks on the item holders at its key in any mode — so even an
		// S grant can extend a gap waiter's conflict set, and its wait
		// edges must be recomputed before the next deadlock decision. A
		// re-acquire's image merge can also narrow a range waiter's
		// conflict set (the after-image is replaced, not accumulated).
		// One atomic load when no range waiter exists.
		granted := m.drainRangeIfWaiters(nil)
		m.gate.RUnlock()
		m.notifyGranted(granted)
		return nil
	}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.obsDeadlock(tx, on)
		sp.mu.Unlock()
		m.gate.RUnlock()
		return ErrDeadlock
	}
	m.countUpgrade(req)
	enqueue(&sp.queue, req)
	m.noteFootprint(tx, sp.idx)
	sp.waits++
	m.notifyWaiting(tx, on)
	m.obsWait(req, on, sp.idx)
	sp.mu.Unlock()
	m.gate.RUnlock()
	return m.await(req)
}

// acquireItemGated is the exclusive-gate item path, used whenever
// predicate locks are held or wanted: conflicts may then span the
// predicate table, so the request needs the stable cross-stripe view.
func (m *Manager) acquireItemGated(tx TxID, key data.Key, mode Mode, im Images) error {
	m.gate.Lock()
	m.gateAcquires.Add(1)
	gs := m.obs.Now()
	sp := m.stripeOf(key)
	st := sp.items[key]
	if st == nil {
		st = &itemState{holders: map[TxID]*holder{}}
		sp.items[key] = st
	}
	if h, ok := st.holders[tx]; ok && h.reserved {
		// Reservations are installed only by gap grants, which exist only
		// while the striped (range) protocol is active — but consume one
		// here too rather than let the flag leak into a refs miscount.
		h.reserved = false
		if mode == X {
			h.mode = X
		}
		h.im = mergeImages(h.im, im)
		m.gate.Unlock()
		m.obs.RecordGateHold(gs)
		return nil
	}
	// Covering re-acquires flow through the full conflict sweep with the
	// request's own images: a transaction that deleted a row (images
	// matching no held predicate) and then re-creates it must have the
	// new after-image checked against the predicate table — the earlier
	// grant proved nothing about this write. installItemLocked merges the
	// covering case into a refs++ re-acquire on grant.
	req := &request{tx: tx, mode: mode, key: key, im: im, ready: make(chan error, 1), seq: m.seq.Add(1)}
	if h, ok := st.holders[tx]; ok && h.mode == S && mode == X {
		req.upgrade = true
	}
	on := m.conflictHoldersLocked(req)
	if len(on) == 0 {
		m.countUpgrade(req)
		m.installItemLocked(sp, req)
		// A re-acquire's image merge can narrow as well as widen a
		// predicate waiter's conflict set (the after-image is replaced,
		// not accumulated), so a full drain — not just an edge refresh —
		// keeps a now-grantable waiter from stranding in the queue.
		granted := m.drainAllLocked()
		m.gate.Unlock()
		m.obs.RecordGateHold(gs)
		m.notifyGranted(granted)
		return nil
	}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.obsDeadlock(tx, on)
		m.gate.Unlock()
		m.obs.RecordGateHold(gs)
		return ErrDeadlock
	}
	m.countUpgrade(req)
	enqueue(&sp.queue, req)
	m.noteFootprint(tx, sp.idx)
	sp.waits++
	m.notifyWaiting(tx, on)
	m.obsWait(req, on, sp.idx)
	m.gate.Unlock()
	m.obs.RecordGateHold(gs)
	return m.await(req)
}

// AcquirePred acquires a predicate lock for tx, blocking until granted.
// The returned handle releases this specific lock. Predicate requests
// always take the exclusive gate: their conflicts span every stripe.
func (m *Manager) AcquirePred(tx TxID, p predicate.P, mode Mode) (PredHandle, error) {
	req := &request{tx: tx, mode: mode, isPred: true, pred: p, ready: make(chan error, 1), seq: m.seq.Add(1)}
	m.gate.Lock()
	m.gateAcquires.Add(1)
	gs := m.obs.Now()
	on := m.conflictHoldersLocked(req)
	if len(on) == 0 {
		m.installPredLocked(req)
		m.predActivity.Add(1) // new holder
		m.refreshAllWaitersLocked()
		m.gate.Unlock()
		m.obs.RecordGateHold(gs)
		return req.handle, nil
	}
	if !m.wf.AddWaiter(tx, on) {
		m.deadlocks.Add(1)
		m.obsDeadlock(tx, on)
		m.gate.Unlock()
		m.obs.RecordGateHold(gs)
		return 0, ErrDeadlock
	}
	m.predQ = append(m.predQ, req)
	m.predActivity.Add(1) // new waiter (stays counted when it becomes a holder)
	m.predWaits++
	m.notifyWaiting(tx, on)
	m.obsWait(req, on, -1)
	m.gate.Unlock()
	m.obs.RecordGateHold(gs)
	if err := m.await(req); err != nil {
		return 0, err
	}
	return req.handle, nil
}

// countUpgrade bumps the upgrade counter for admitted upgrade requests
// (granted immediately or enqueued; deadlock victims are not admitted).
func (m *Manager) countUpgrade(req *request) {
	if req.upgrade {
		m.upgrades.Add(1)
		if m.obs != nil {
			m.obs.Upgrade(int(req.tx), string(req.key), m.stripeIndex(req.key))
		}
	}
}

// notifyWaiting emits the observer's TxWaiting. Called with the request's
// enqueue latch still held, so the emission is strictly ordered before
// any grant of the request: a drain must take the same latch first.
func (m *Manager) notifyWaiting(tx TxID, on []TxID) {
	if m.observer != nil {
		m.observer.TxWaiting(tx, on)
	}
}

// await blocks the requesting goroutine on its queued request. TxWaiting
// was emitted at enqueue (under the latch); TxGranted is emitted by the
// granting goroutine in notifyGranted — so a single-channel observer sees
// wait and grant events in their true causal order.
func (m *Manager) await(req *request) error {
	return <-req.ready
}

// itemConflictHolders returns the distinct transactions whose granted
// same-item locks conflict with req, sorted. Called with the item's stripe
// latched (or the gate exclusive).
func itemConflictHolders(st *itemState, req *request) []TxID {
	if st == nil {
		return nil
	}
	var out []TxID
	for tx, h := range st.holders {
		if tx == req.tx || !conflicts(req.mode, h.mode) {
			continue
		}
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// conflictHoldersLocked returns the distinct transactions whose granted
// locks — item locks in any stripe and predicate locks — conflict with
// req, sorted. Called with the gate held exclusively.
func (m *Manager) conflictHoldersLocked(req *request) []TxID {
	seen := map[TxID]bool{}
	if req.isPred {
		// Predicate request vs item holders in every stripe.
		for _, sp := range m.stripes {
			for key, st := range sp.items {
				for tx, h := range st.holders {
					if tx == req.tx || !conflicts(req.mode, h.mode) {
						continue
					}
					if h.im.matches(req.pred, key) {
						seen[tx] = true
					}
				}
			}
		}
		// Predicate request vs predicate holders.
		for _, ps := range m.preds {
			if ps.tx == req.tx || !conflicts(req.mode, ps.mode) {
				continue
			}
			if !predicate.DisjointWith(req.pred, ps.pred) {
				seen[ps.tx] = true
			}
		}
	} else {
		for _, tx := range m.itemConflictHoldersLocked(m.stripeOf(req.key), req) {
			seen[tx] = true
		}
		// Item request vs predicate holders.
		for _, ps := range m.preds {
			if ps.tx == req.tx || !conflicts(req.mode, ps.mode) {
				continue
			}
			if req.im.matches(ps.pred, req.key) {
				seen[ps.tx] = true
			}
		}
	}
	out := make([]TxID, 0, len(seen))
	for tx := range seen {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// installItemLocked installs req's item lock in sp. Called with sp latched
// (or the gate exclusive).
//
//isolint:grant-mutator
func (m *Manager) installItemLocked(sp *stripe, req *request) {
	sp.grants++
	st := sp.items[req.key]
	if st == nil {
		st = &itemState{holders: map[TxID]*holder{}}
		sp.items[req.key] = st
	}
	if h, ok := st.holders[req.tx]; ok {
		// Upgrade or re-acquire.
		if req.mode == X {
			h.mode = X
		}
		h.refs++
		h.im = mergeImages(h.im, req.im)
		return
	}
	st.holders[req.tx] = &holder{mode: req.mode, refs: 1, im: req.im}
	hk := sp.held[req.tx]
	if hk == nil {
		hk = map[data.Key]struct{}{}
		sp.held[req.tx] = hk
		m.noteFootprint(req.tx, sp.idx)
	}
	hk[req.key] = struct{}{}
}

// installPredLocked installs req's predicate lock and assigns its handle.
// Called with the gate held exclusively.
//
//isolint:grant-mutator
func (m *Manager) installPredLocked(req *request) {
	m.predGrants++
	m.handles++
	req.handle = m.handles
	m.preds[req.handle] = &predState{tx: req.tx, mode: req.mode, pred: req.pred, refs: 1}
}

// enqueue inserts req into q: upgrades go before non-upgrades (but after
// earlier upgrades), everything else in arrival order.
func enqueue(q *[]*request, req *request) {
	if !req.upgrade {
		*q = append(*q, req)
		return
	}
	idx := 0
	for idx < len(*q) && (*q)[idx].upgrade {
		idx++
	}
	*q = append(*q, nil)
	copy((*q)[idx+1:], (*q)[idx:])
	(*q)[idx] = req
}

// mergeImages keeps the earliest before-image and the latest after-image,
// widening predicate conflict coverage across multiple writes of the same
// item by one transaction.
func mergeImages(old, new Images) Images {
	out := old
	if out.Before == nil {
		out.Before = new.Before
	}
	if new.After != nil {
		out.After = new.After
	}
	return out
}

// dropItemLocked removes one reference of tx's hold on key. Called with
// the key's stripe latched (or the gate exclusive).
func (m *Manager) dropItemLocked(sp *stripe, tx TxID, key data.Key) {
	st := sp.items[key]
	if st == nil {
		return
	}
	h, ok := st.holders[tx]
	if !ok {
		return
	}
	h.refs--
	if h.refs > 0 {
		return
	}
	delete(st.holders, tx)
	if hk := sp.held[tx]; hk != nil {
		delete(hk, key)
		if len(hk) == 0 {
			delete(sp.held, tx)
		}
	}
	if len(st.holders) == 0 {
		delete(sp.items, key)
	}
}

// ReleaseItem decrements tx's hold on key, removing the lock at zero and
// draining the stripe's wait queue.
func (m *Manager) ReleaseItem(tx TxID, key data.Key) {
	m.gate.RLock()
	if m.predActivity.Load() == 0 {
		if m.rangeActivity.Load() != 0 {
			// Range activity: the release may unblock a queued range or
			// gap request as well as this stripe's item waiters; drain
			// both in global arrival order (see drainRangeLocked). The
			// gate is deliberately rangeActivity, not rangeQLen: the
			// predicate twin drains globally-by-seq exactly while a
			// predicate lock is *held* (predActivity), so draining
			// per-stripe here while fragments are live would reorder
			// cross-stripe grants and break the protocols' trace
			// equivalence.
			m.rangeMu.Lock()
			sp := m.stripeOf(key)
			sp.mu.Lock()
			m.dropItemLocked(sp, tx, key)
			sp.mu.Unlock()
			granted := m.drainRangeLocked(map[int]bool{sp.idx: true})
			m.rangeMu.Unlock()
			m.gate.RUnlock()
			m.notifyGranted(granted)
			return
		}
		sp := m.stripeOf(key)
		sp.mu.Lock()
		m.dropItemLocked(sp, tx, key)
		granted := m.drainStripeLocked(sp)
		sp.mu.Unlock()
		m.gate.RUnlock()
		m.notifyGranted(granted)
		return
	}
	m.gate.RUnlock()
	// Predicate activity: the release may unblock a predicate waiter, so
	// the drain needs the cross-stripe view.
	m.gate.Lock()
	m.gateAcquires.Add(1)
	gs := m.obs.Now()
	m.dropItemLocked(m.stripeOf(key), tx, key)
	granted := m.drainAllLocked()
	m.gate.Unlock()
	m.obs.RecordGateHold(gs)
	m.notifyGranted(granted)
}

// ReleasePred releases the predicate lock identified by handle.
func (m *Manager) ReleasePred(tx TxID, handle PredHandle) {
	m.gate.Lock()
	m.gateAcquires.Add(1)
	gs := m.obs.Now()
	if ps, ok := m.preds[handle]; ok && ps.tx == tx {
		ps.refs--
		if ps.refs <= 0 {
			delete(m.preds, handle)
			m.predActivity.Add(-1)
		}
	}
	granted := m.drainAllLocked()
	m.gate.Unlock()
	m.obs.RecordGateHold(gs)
	m.notifyGranted(granted)
}

// ReleaseAll releases every lock held by tx (commit/abort time: the end of
// all long-duration locks) and cancels any of tx's queued requests.
func (m *Manager) ReleaseAll(tx TxID) {
	m.gate.RLock()
	if m.predActivity.Load() == 0 {
		if m.rangeActivity.Load() != 0 {
			m.releaseAllRangeAware(tx)
			return
		}
		// Striped path: no predicate state exists, so each touched stripe
		// can be released and drained independently. An item waiter only
		// ever waits on same-key holders, so per-stripe drains see every
		// consequence of this stripe's releases, and untouched stripes
		// (the footprint tracks them) need no visit at all.
		m.wf.Remove(tx)
		var granted, cancelled []*request
		for _, spIdx := range m.takeFootprintSorted(tx) {
			sp := m.stripes[spIdx]
			sp.mu.Lock()
			for key := range sp.held[tx] {
				if st := sp.items[key]; st != nil {
					delete(st.holders, tx)
					if len(st.holders) == 0 {
						delete(sp.items, key)
					}
				}
			}
			delete(sp.held, tx)
			cancelled = append(cancelled, cancelQueued(&sp.queue, tx, m.wf)...)
			granted = append(granted, m.drainStripeLocked(sp)...)
			sp.mu.Unlock()
		}
		m.gate.RUnlock()
		m.notifyCancelled(cancelled, tx)
		m.notifyGranted(granted)
		return
	}
	m.gate.RUnlock()

	m.gate.Lock()
	m.gateAcquires.Add(1)
	gs := m.obs.Now()
	m.wf.Remove(tx)
	var cancelled []*request
	for _, spIdx := range m.takeFootprintSorted(tx) {
		sp := m.stripes[spIdx]
		for key := range sp.held[tx] {
			if st := sp.items[key]; st != nil {
				delete(st.holders, tx)
				if len(st.holders) == 0 {
					delete(sp.items, key)
				}
			}
		}
		delete(sp.held, tx)
		cancelled = append(cancelled, cancelQueued(&sp.queue, tx, m.wf)...)
	}
	removedPreds := int64(0)
	for h, ps := range m.preds {
		if ps.tx == tx {
			delete(m.preds, h)
			removedPreds++
		}
	}
	m.predActivity.Add(-removedPreds)
	predCancelled := cancelQueued(&m.predQ, tx, m.wf)
	m.predActivity.Add(-int64(len(predCancelled)))
	cancelled = append(cancelled, predCancelled...)
	granted := m.drainAllLocked()
	m.gate.Unlock()
	m.obs.RecordGateHold(gs)
	m.notifyCancelled(cancelled, tx)
	m.notifyGranted(granted)
	if m.rangeActivity.Load() != 0 {
		// Defensive: a manager mixing predicate and key-range protocols
		// (no engine does) must still not leak tx's range state.
		m.gate.RLock()
		m.rangeMu.Lock()
		touched, rangeCancelled := m.releaseAllRangesLocked(tx)
		rangeGranted := m.drainRangeLocked(touched)
		m.rangeMu.Unlock()
		m.gate.RUnlock()
		m.notifyCancelled(rangeCancelled, tx)
		m.notifyGranted(rangeGranted)
	}
}

// cancelQueued removes tx's requests from q (defensive; the engines never
// abort a transaction with an in-flight request) and clears their wait
// edges.
func cancelQueued(q *[]*request, tx TxID, wf *WaitsFor) []*request {
	var cancelled []*request
	keep := (*q)[:0]
	for _, r := range *q {
		if r.tx == tx {
			cancelled = append(cancelled, r)
		} else {
			keep = append(keep, r)
		}
	}
	*q = keep
	if len(cancelled) > 0 {
		wf.Remove(tx)
	}
	return cancelled
}

// drainStripeLocked grants sp's queued requests that no longer conflict,
// upgrades first then arrival order, refreshes the wait edges of the
// requests that stay blocked, and returns the granted ones for
// notification outside the latches. Called with sp latched under the
// shared gate and no predicate activity (item-item conflicts only).
func (m *Manager) drainStripeLocked(sp *stripe) []*request {
	var granted []*request
	for {
		progress := false
		var keep []*request
		for _, r := range sp.queue {
			if len(m.itemConflictHoldersLocked(sp, r)) == 0 {
				m.installItemLocked(sp, r)
				m.wf.Remove(r.tx)
				granted = append(granted, r)
				progress = true
			} else {
				keep = append(keep, r)
			}
		}
		sp.queue = keep
		if !progress {
			break
		}
	}
	m.refreshStripeWaitersLocked(sp)
	return granted
}

// refreshStripeWaitersLocked recomputes the wait edges of every request
// still queued on sp. Called with sp latched under the shared gate.
//
//isolint:waiter-refresh
func (m *Manager) refreshStripeWaitersLocked(sp *stripe) {
	for _, r := range sp.queue {
		m.wf.Refresh(r.tx, m.itemConflictHoldersLocked(sp, r))
	}
}

// drainAllLocked grants queued requests across every stripe and the
// predicate queue, in global upgrade-first arrival order, then refreshes
// the wait edges of everything still blocked. Called with the gate held
// exclusively.
func (m *Manager) drainAllLocked() []*request {
	var granted []*request
	for {
		progress := false
		cands := append([]*request(nil), m.predQ...)
		for _, sp := range m.stripes {
			cands = append(cands, sp.queue...)
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].upgrade != cands[j].upgrade {
				return cands[i].upgrade
			}
			return cands[i].seq < cands[j].seq
		})
		for _, r := range cands {
			if len(m.conflictHoldersLocked(r)) != 0 {
				continue
			}
			if r.isPred {
				m.installPredLocked(r)
				removeRequest(&m.predQ, r)
			} else {
				m.installItemLocked(m.stripeOf(r.key), r)
				removeRequest(&m.stripeOf(r.key).queue, r)
			}
			m.wf.Remove(r.tx)
			granted = append(granted, r)
			progress = true
		}
		if !progress {
			break
		}
	}
	m.refreshAllWaitersLocked()
	return granted
}

// refreshAllWaitersLocked recomputes the wait edges of every queued
// request, item and predicate. Called with the gate held exclusively.
//
//isolint:waiter-refresh
func (m *Manager) refreshAllWaitersLocked() {
	for _, sp := range m.stripes {
		for _, r := range sp.queue {
			m.wf.Refresh(r.tx, m.conflictHoldersLocked(r))
		}
	}
	for _, r := range m.predQ {
		m.wf.Refresh(r.tx, m.conflictHoldersLocked(r))
	}
}

func removeRequest(q *[]*request, req *request) {
	for i, r := range *q {
		if r == req {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
}

// notifyGranted wakes the granted requests, emitting the observer's
// TxGranted from this — the granting — goroutine *before* each waiter
// wakes. The ordering matters to the schedule runner's quiescence
// protocol: a grant caused by a release is observable in the event queue
// before the releasing engine operation returns, so the runner can settle
// every resumed transaction before dispatching another step. In parked
// mode the wake-up is withheld instead (see ParkGrants). Called outside
// all latches.
func (m *Manager) notifyGranted(granted []*request) {
	for _, r := range granted {
		// Grant events are recorded at grant decision, not delivery: in
		// parked mode the lock state is already installed here, only the
		// wake-up is withheld.
		m.obsGranted(r)
		if m.park(parkedSend{req: r}) {
			continue
		}
		if m.observer != nil {
			m.observer.TxGranted(r.tx)
		}
		r.ready <- nil
	}
}

func (m *Manager) notifyCancelled(cancelled []*request, tx TxID) {
	for _, r := range cancelled {
		err := fmt.Errorf("lock: request cancelled by ReleaseAll(T%d)", tx)
		if m.park(parkedSend{req: r, err: err}) {
			continue
		}
		r.ready <- err
	}
}

// parkedSend is one withheld waiter wake-up: a grant (err == nil) or a
// cancellation.
type parkedSend struct {
	req *request
	err error
}

// ParkGrants switches grant parking on or off. While parked, waiters whose
// requests are granted (the lock *state* is installed normally, under the
// latches) are not woken; their wake-ups queue FIFO until DeliverNextGrant
// releases them one at a time. The schedule runner uses this to guarantee
// that at most one engine operation executes at any moment — a mid-op
// lock release can no longer resume a waiter whose continuation would race
// the remainder of the releasing operation, which is the last source of
// scheduling-dependent outcomes in scripted runs. Disabling flushes any
// still-parked wake-ups.
func (m *Manager) ParkGrants(on bool) {
	m.parkMu.Lock()
	m.parking = on
	var flush []parkedSend
	if !on {
		flush = m.parked
		m.parked = nil
	}
	m.parkMu.Unlock()
	for _, p := range flush {
		m.deliverParked(p)
	}
}

// DeliverNextGrant wakes the oldest parked waiter, reporting its
// transaction and whether one was pending.
func (m *Manager) DeliverNextGrant() (TxID, bool) {
	m.parkMu.Lock()
	if len(m.parked) == 0 {
		m.parkMu.Unlock()
		return 0, false
	}
	p := m.parked[0]
	m.parked = m.parked[1:]
	m.parkMu.Unlock()
	m.deliverParked(p)
	return p.req.tx, true
}

func (m *Manager) deliverParked(p parkedSend) {
	if p.err == nil && m.observer != nil {
		m.observer.TxGranted(p.req.tx)
	}
	p.req.ready <- p.err
}

func (m *Manager) park(p parkedSend) bool {
	m.parkMu.Lock()
	defer m.parkMu.Unlock()
	if !m.parking {
		return false
	}
	m.parked = append(m.parked, p)
	return true
}

// Holding reports whether tx currently holds an item lock on key, and its
// mode.
func (m *Manager) Holding(tx TxID, key data.Key) (Mode, bool) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	sp := m.stripeOf(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if st := sp.items[key]; st != nil {
		if h, ok := st.holders[tx]; ok {
			return h.mode, true
		}
	}
	return 0, false
}

// HoldingPred reports whether tx holds any predicate lock.
func (m *Manager) HoldingPred(tx TxID) bool {
	m.gate.RLock()
	defer m.gate.RUnlock()
	for _, ps := range m.preds {
		if ps.tx == tx {
			return true
		}
	}
	return false
}

// QueueLen reports the number of waiting requests (for tests and metrics).
func (m *Manager) QueueLen() int {
	m.gate.RLock()
	defer m.gate.RUnlock()
	n := len(m.predQ) + int(m.rangeQLen.Load())
	for _, sp := range m.stripes {
		sp.mu.Lock()
		n += len(sp.queue)
		sp.mu.Unlock()
	}
	return n
}
