// Package lock implements the lock scheduler of the paper's §2.3:
// Read (Share) and Write (Exclusive) locks on data items and on predicates,
// with short or long durations chosen by the isolation level (Table 2).
//
// Conflict rules follow the paper:
//
//   - Two item locks by different transactions on the same item conflict if
//     at least one is a Write lock.
//   - A predicate lock is effectively a lock on all data items satisfying
//     the <search condition>, including phantoms. A predicate lock and an
//     item lock by different transactions conflict (when one is a Write
//     lock) if the item's row image — before or after image for writes,
//     current image for reads — satisfies the predicate.
//   - Two predicate locks by different transactions conflict if one is a
//     Write lock and the predicates are not provably disjoint (a
//     conservative approximation of "there is a possibly phantom data item
//     covered by both", which is the only sound direction: it can only
//     strengthen an isolation level).
//
// Waiting requests are queued first-come-first-served (lock upgrades jump
// the queue, which is the standard way to shrink the upgrade deadlock
// window). Deadlocks are detected immediately on the waits-for graph when a
// request would block; the requester is the victim and receives
// ErrDeadlock. An Observer can be registered to learn, deterministically,
// when a transaction starts waiting — the schedule runner uses this instead
// of timeouts.
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes: Shared (read) and Exclusive (write).
const (
	S Mode = iota
	X
)

func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// conflicts reports whether two modes held by different transactions
// conflict: at least one Write lock.
func conflicts(a, b Mode) bool { return a == X || b == X }

// TxID identifies a transaction to the lock manager.
type TxID int

// ErrDeadlock is returned to a requester whose wait would close a cycle in
// the waits-for graph. The requester is always the victim (deterministic).
var ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")

// Observer receives wait-state notifications. Callbacks run on the
// requesting goroutine, outside the manager's mutex, in a deterministic
// order relative to the request's own fate.
type Observer interface {
	// TxWaiting fires when tx's request enqueues behind conflicting holders.
	TxWaiting(tx TxID, on []TxID)
	// TxGranted fires when a previously waiting request is granted.
	TxGranted(tx TxID)
}

// Images carries the row images a lock request exposes for predicate
// conflict checks: Before/After for writes (nil Before = insert, nil After
// = delete), Before = current row for reads.
type Images struct {
	Before, After data.Row
}

// matches reports whether p covers either image at key.
func (im Images) matches(p predicate.P, key data.Key) bool {
	return predicate.MatchEither(p, key, im.Before, im.After)
}

// holder records one transaction's granted item lock.
type holder struct {
	mode Mode
	refs int
	im   Images
}

// itemState is the lock table entry for one data item.
type itemState struct {
	holders map[TxID]*holder
}

// PredHandle identifies a granted predicate lock for later release.
type PredHandle int64

// predState is a granted predicate lock.
type predState struct {
	tx   TxID
	mode Mode
	pred predicate.P
	refs int
}

// request is a pending lock request.
type request struct {
	tx      TxID
	mode    Mode
	isPred  bool
	key     data.Key
	pred    predicate.P
	im      Images
	upgrade bool
	ready   chan error
	// handle receives the predicate handle on grant.
	handle PredHandle
	seq    int64
}

// Stats counts manager activity for benchmarks and reports.
type Stats struct {
	Grants    int64
	Waits     int64
	Deadlocks int64
}

// Manager is a lock manager. The zero value is not usable; use NewManager.
type Manager struct {
	mu       sync.Mutex
	items    map[data.Key]*itemState
	preds    map[PredHandle]*predState
	queue    []*request // waiting requests, arrival order (upgrades first)
	seq      int64
	handles  PredHandle
	observer Observer
	stats    Stats
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		items: map[data.Key]*itemState{},
		preds: map[PredHandle]*predState{},
	}
}

// SetObserver installs the wait observer. Must be called before concurrent
// use.
func (m *Manager) SetObserver(o Observer) { m.observer = o }

// Stats returns a snapshot of manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// AcquireItem acquires an item lock for tx on key with the given mode and
// row images, blocking until granted. Re-acquisition by the same holder is
// reference-counted; an S→X upgrade waits only on other holders and jumps
// the queue. Returns ErrDeadlock if waiting would close a waits-for cycle.
func (m *Manager) AcquireItem(tx TxID, key data.Key, mode Mode, im Images) error {
	m.mu.Lock()
	st := m.items[key]
	if st == nil {
		st = &itemState{holders: map[TxID]*holder{}}
		m.items[key] = st
	}
	if h, ok := st.holders[tx]; ok && (h.mode == X || mode == S) {
		// Already held at a covering mode.
		h.refs++
		h.im = mergeImages(h.im, im)
		m.stats.Grants++
		m.mu.Unlock()
		return nil
	}
	req := &request{tx: tx, mode: mode, key: key, im: im, ready: make(chan error, 1), seq: m.nextSeq()}
	if h, ok := st.holders[tx]; ok && h.mode == S && mode == X {
		req.upgrade = true
	}
	return m.admit(req)
}

// AcquirePred acquires a predicate lock for tx, blocking until granted.
// The returned handle releases this specific lock.
func (m *Manager) AcquirePred(tx TxID, p predicate.P, mode Mode) (PredHandle, error) {
	m.mu.Lock()
	req := &request{tx: tx, mode: mode, isPred: true, pred: p, ready: make(chan error, 1), seq: m.nextSeq()}
	if err := m.admit(req); err != nil {
		return 0, err
	}
	return req.handle, nil
}

// nextSeq must be called with mu held.
func (m *Manager) nextSeq() int64 {
	m.seq++
	return m.seq
}

// admit is called with mu held; it grants immediately, or enqueues and
// blocks, or rejects with ErrDeadlock. It releases mu before blocking and
// before invoking observers.
func (m *Manager) admit(req *request) error {
	if !m.conflictsGranted(req) {
		m.grantLocked(req)
		m.mu.Unlock()
		return nil
	}
	// Would block: deadlock check on the waits-for graph including this
	// request.
	if m.wouldDeadlock(req) {
		m.stats.Deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	// Enqueue. Upgrades go before non-upgrades (but after earlier upgrades).
	if req.upgrade {
		idx := 0
		for idx < len(m.queue) && m.queue[idx].upgrade {
			idx++
		}
		m.queue = append(m.queue, nil)
		copy(m.queue[idx+1:], m.queue[idx:])
		m.queue[idx] = req
	} else {
		m.queue = append(m.queue, req)
	}
	m.stats.Waits++
	waitingOn := m.conflictHolders(req)
	m.mu.Unlock()

	if m.observer != nil {
		m.observer.TxWaiting(req.tx, waitingOn)
	}
	err := <-req.ready
	if m.observer != nil && err == nil {
		m.observer.TxGranted(req.tx)
	}
	return err
}

// conflictsGranted reports whether req conflicts with any currently granted
// lock of another transaction. Called with mu held.
func (m *Manager) conflictsGranted(req *request) bool {
	return len(m.conflictHolders(req)) > 0
}

// conflictHolders returns the distinct transactions whose granted locks
// conflict with req, sorted. Called with mu held.
func (m *Manager) conflictHolders(req *request) []TxID {
	seen := map[TxID]bool{}
	if req.isPred {
		// Predicate request vs item holders.
		for key, st := range m.items {
			for tx, h := range st.holders {
				if tx == req.tx || !conflicts(req.mode, h.mode) {
					continue
				}
				if h.im.matches(req.pred, key) {
					seen[tx] = true
				}
			}
		}
		// Predicate request vs predicate holders.
		for _, ps := range m.preds {
			if ps.tx == req.tx || !conflicts(req.mode, ps.mode) {
				continue
			}
			if !predicate.DisjointWith(req.pred, ps.pred) {
				seen[ps.tx] = true
			}
		}
	} else {
		if st := m.items[req.key]; st != nil {
			for tx, h := range st.holders {
				if tx == req.tx || !conflicts(req.mode, h.mode) {
					continue
				}
				seen[tx] = true
			}
		}
		// Item request vs predicate holders.
		for _, ps := range m.preds {
			if ps.tx == req.tx || !conflicts(req.mode, ps.mode) {
				continue
			}
			if req.im.matches(ps.pred, req.key) {
				seen[ps.tx] = true
			}
		}
	}
	out := make([]TxID, 0, len(seen))
	for tx := range seen {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// wouldDeadlock builds the waits-for graph of all queued requests plus req
// and reports whether a cycle through req.tx exists. Called with mu held.
func (m *Manager) wouldDeadlock(req *request) bool {
	edges := map[TxID]map[TxID]bool{}
	addEdges := func(r *request) {
		for _, on := range m.conflictHolders(r) {
			if edges[r.tx] == nil {
				edges[r.tx] = map[TxID]bool{}
			}
			edges[r.tx][on] = true
		}
	}
	for _, r := range m.queue {
		addEdges(r)
	}
	addEdges(req)
	// DFS from req.tx looking for a path back to req.tx.
	var stack []TxID
	for on := range edges[req.tx] {
		stack = append(stack, on)
	}
	visited := map[TxID]bool{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == req.tx {
			return true
		}
		if visited[n] {
			continue
		}
		visited[n] = true
		for on := range edges[n] {
			stack = append(stack, on)
		}
	}
	return false
}

// grantLocked installs the lock for req. Called with mu held.
func (m *Manager) grantLocked(req *request) {
	m.stats.Grants++
	if req.isPred {
		m.handles++
		req.handle = m.handles
		m.preds[req.handle] = &predState{tx: req.tx, mode: req.mode, pred: req.pred, refs: 1}
		return
	}
	st := m.items[req.key]
	if st == nil {
		st = &itemState{holders: map[TxID]*holder{}}
		m.items[req.key] = st
	}
	if h, ok := st.holders[req.tx]; ok {
		// Upgrade or re-acquire.
		if req.mode == X {
			h.mode = X
		}
		h.refs++
		h.im = mergeImages(h.im, req.im)
		return
	}
	st.holders[req.tx] = &holder{mode: req.mode, refs: 1, im: req.im}
}

// mergeImages keeps the earliest before-image and the latest after-image,
// widening predicate conflict coverage across multiple writes of the same
// item by one transaction.
func mergeImages(old, new Images) Images {
	out := old
	if out.Before == nil {
		out.Before = new.Before
	}
	if new.After != nil {
		out.After = new.After
	}
	if new.Before != nil && out.Before == nil {
		out.Before = new.Before
	}
	return out
}

// ReleaseItem decrements tx's hold on key, removing the lock at zero and
// re-scanning the wait queue.
func (m *Manager) ReleaseItem(tx TxID, key data.Key) {
	m.mu.Lock()
	if st := m.items[key]; st != nil {
		if h, ok := st.holders[tx]; ok {
			h.refs--
			if h.refs <= 0 {
				delete(st.holders, tx)
				if len(st.holders) == 0 {
					delete(m.items, key)
				}
			}
		}
	}
	granted := m.drainQueueLocked()
	m.mu.Unlock()
	notifyGranted(granted)
}

// ReleasePred releases the predicate lock identified by handle.
func (m *Manager) ReleasePred(tx TxID, handle PredHandle) {
	m.mu.Lock()
	if ps, ok := m.preds[handle]; ok && ps.tx == tx {
		ps.refs--
		if ps.refs <= 0 {
			delete(m.preds, handle)
		}
	}
	granted := m.drainQueueLocked()
	m.mu.Unlock()
	notifyGranted(granted)
}

// ReleaseAll releases every lock held by tx (commit/abort time: the end of
// all long-duration locks) and cancels any of tx's queued requests.
func (m *Manager) ReleaseAll(tx TxID) {
	m.mu.Lock()
	for key, st := range m.items {
		delete(st.holders, tx)
		if len(st.holders) == 0 {
			delete(m.items, key)
		}
	}
	for h, ps := range m.preds {
		if ps.tx == tx {
			delete(m.preds, h)
		}
	}
	// Cancel queued requests of tx (defensive; the engines never abort a
	// transaction with an in-flight request).
	var keep []*request
	var cancelled []*request
	for _, r := range m.queue {
		if r.tx == tx {
			cancelled = append(cancelled, r)
		} else {
			keep = append(keep, r)
		}
	}
	m.queue = keep
	granted := m.drainQueueLocked()
	m.mu.Unlock()
	for _, r := range cancelled {
		r.ready <- fmt.Errorf("lock: request cancelled by ReleaseAll(T%d)", tx)
	}
	notifyGranted(granted)
}

// drainQueueLocked grants queued requests that no longer conflict, in queue
// order, and returns them for notification outside the mutex.
func (m *Manager) drainQueueLocked() []*request {
	var granted []*request
	for {
		progress := false
		var keep []*request
		for _, r := range m.queue {
			if !m.conflictsGranted(r) {
				m.grantLocked(r)
				granted = append(granted, r)
				progress = true
			} else {
				keep = append(keep, r)
			}
		}
		m.queue = keep
		if !progress {
			break
		}
	}
	return granted
}

func notifyGranted(granted []*request) {
	for _, r := range granted {
		r.ready <- nil
	}
}

// Holding reports whether tx currently holds an item lock on key, and its
// mode.
func (m *Manager) Holding(tx TxID, key data.Key) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.items[key]; st != nil {
		if h, ok := st.holders[tx]; ok {
			return h.mode, true
		}
	}
	return 0, false
}

// HoldingPred reports whether tx holds any predicate lock.
func (m *Manager) HoldingPred(tx TxID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ps := range m.preds {
		if ps.tx == tx {
			return true
		}
	}
	return false
}

// QueueLen reports the number of waiting requests (for tests and metrics).
func (m *Manager) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
