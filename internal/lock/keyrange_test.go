package lock

import (
	"errors"
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// ge is the fuzzer's pool predicate shape: val >= arg.
func ge(arg int64) predicate.P {
	return predicate.Field{Name: data.ValField, Op: predicate.GE, Arg: arg}
}

// rangeSpec builds an unbounded whole-space spec over the given anchors.
func rangeSpec(p predicate.P, anchors ...data.Key) RangeSpec {
	return RangeSpec{Pred: p, Anchors: anchors}
}

func mustRange(t *testing.T, m *Manager, tx TxID, spec RangeSpec) RangeHandle {
	t.Helper()
	h, err := m.AcquireRange(tx, spec)
	if err != nil {
		t.Fatalf("AcquireRange(T%d): %v", tx, err)
	}
	return h
}

func TestRangeBlocksMatchingWrite(t *testing.T) {
	m := NewManagerShards(4)
	mustRange(t, m, 1, rangeSpec(ge(10), "x", "y"))
	got := make(chan error, 1)
	go func() {
		got <- m.AcquireItem(2, "y", X, Images{Before: row(5), After: row(50)})
	}()
	select {
	case <-got:
		t.Fatal("matching write acquired under a key-range lock")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("write never granted after range release")
	}
}

func TestRangeIgnoresNonMatchingWrite(t *testing.T) {
	m := NewManagerShards(4)
	mustRange(t, m, 1, rangeSpec(ge(10), "x", "y"))
	// Neither image satisfies val >= 10: the image-refined fragment does
	// not conflict (the same rule as the predicate table).
	if err := m.AcquireItem(2, "y", X, Images{Before: row(1), After: row(2)}); err != nil {
		t.Fatal(err)
	}
	// And a write outside the anchors entirely.
	if err := m.AcquireItem(2, "z", X, Images{Before: row(1), After: row(3)}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeConflictsWithHeldWrite(t *testing.T) {
	m := NewManagerShards(4)
	if err := m.AcquireItem(1, "y", X, Images{Before: row(5), After: row(50)}); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := m.AcquireRange(2, rangeSpec(ge(10), "x", "y"))
		got <- err
	}()
	select {
	case <-got:
		t.Fatal("range lock granted over a matching exclusive holder")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("range lock never granted after the writer released")
	}
	if !m.HoldingRange(2) {
		t.Fatal("HoldingRange(2) = false after grant")
	}
}

func TestGapBlocksMatchingInsert(t *testing.T) {
	m := NewManagerShards(4)
	mustRange(t, m, 1, rangeSpec(ge(10), "b", "m"))
	// Insert into the gap (b, m) with a matching after-image: blocked by
	// the fragment anchored at m (the gap's owner).
	got := make(chan error, 1)
	go func() { got <- m.AcquireGap(2, "g", Images{After: row(99)}) }()
	select {
	case <-got:
		t.Fatal("matching insert slipped through a locked gap")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestGapSupremumCoversAboveRange(t *testing.T) {
	m := NewManagerShards(4)
	// Unbounded scan with no ceiling: the gap above the last anchor is
	// covered by the supremum fragment.
	mustRange(t, m, 1, rangeSpec(ge(10), "b", "m"))
	got := make(chan error, 1)
	go func() { got <- m.AcquireGap(2, "zz", Images{After: row(50)}) }()
	select {
	case <-got:
		t.Fatal("matching insert above every anchor not covered by the supremum")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestGapIgnoresNonMatchingInsert(t *testing.T) {
	m := NewManagerShards(4)
	mustRange(t, m, 1, rangeSpec(ge(10), "b", "m"))
	if err := m.AcquireGap(2, "g", Images{After: row(3)}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.GapGrants != 1 || st.GapWaits != 0 {
		t.Fatalf("gap stats = %d grants / %d waits, want 1/0", st.GapGrants, st.GapWaits)
	}
}

// TestGapInheritance: a non-matching insert into a covered gap must leave
// the gap below it covered — the inserted key inherits the fragments, so a
// later matching write of that key (or insert below it) still conflicts.
func TestGapInheritance(t *testing.T) {
	m := NewManagerShards(4)
	mustRange(t, m, 1, rangeSpec(ge(10), "b", "m"))
	// Non-matching insert at g: allowed, inherits coverage onto g.
	if err := m.AcquireGap(2, "g", Images{After: row(3)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireItem(2, "g", X, Images{After: row(3)}); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	// The row at g now exists; updating it into the scanned predicate is a
	// phantom for T1 and must block on the inherited fragment.
	got := make(chan error, 1)
	go func() { got <- m.AcquireItem(3, "g", X, Images{Before: row(3), After: row(42)}) }()
	select {
	case <-got:
		t.Fatal("update into the predicate not blocked by the inherited fragment")
	case <-time.After(50 * time.Millisecond):
	}
	// And a matching insert below g is still covered (g now owns the gap).
	got2 := make(chan error, 1)
	go func() { got2 <- m.AcquireGap(4, "c", Images{After: row(77)}) }()
	select {
	case <-got2:
		t.Fatal("matching insert below the inherited anchor not blocked")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if err := <-got2; err != nil {
		t.Fatal(err)
	}
}

func TestRangeDeadlockRequesterVictim(t *testing.T) {
	m := NewManagerShards(4)
	// T1 holds a matching X on y; T2's range over {x,y} waits on T1.
	if err := m.AcquireItem(1, "y", X, Images{After: row(50)}); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireItem(2, "z", X, Images{After: row(60)}); err != nil {
		t.Fatal(err)
	}
	waiting := make(chan error, 1)
	go func() {
		_, err := m.AcquireRange(2, rangeSpec(ge(10), "x", "y"))
		waiting <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// T1 now requests T2's z: closes the cycle T1 -> T2 -> T1; T1 (the
	// requester) is the victim, exactly as with a predicate lock.
	err := m.AcquireItem(1, "z", X, Images{After: row(70)})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("requester got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(1)
	if err := <-waiting; err != nil {
		t.Fatalf("range waiter: %v", err)
	}
}

// TestRangeNeverTakesGate: the whole point — a keyrange workload must
// leave the cross-stripe gate untouched while still counting its range
// and gap activity.
func TestRangeNeverTakesGate(t *testing.T) {
	m := NewManagerShards(8)
	h := mustRange(t, m, 1, rangeSpec(ge(10), "a", "b", "c", "d"))
	done := make(chan error, 1)
	go func() { done <- m.AcquireItem(2, "c", X, Images{Before: row(5), After: row(50)}) }()
	time.Sleep(50 * time.Millisecond)
	m.ReleaseRange(1, h)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireGap(2, "aa", Images{After: row(99)}); err != nil {
		t.Fatal(err) // fragments gone: nothing covers the gap
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	st := m.Stats()
	if st.GateAcquires != 0 {
		t.Fatalf("GateAcquires = %d on a pure keyrange workload, want 0", st.GateAcquires)
	}
	if st.RangeGrants != 1 || st.RangeWaits != 0 {
		t.Fatalf("range stats = %d grants / %d waits, want 1/0", st.RangeGrants, st.RangeWaits)
	}
	if st.Waits != 1 {
		t.Fatalf("Waits = %d, want 1 (the blocked writer)", st.Waits)
	}
	// ... whereas one predicate lock acquisition does take the gate.
	if _, err := m.AcquirePred(3, ge(10), S); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().GateAcquires; got == 0 {
		t.Fatal("predicate path did not count its gate acquisition")
	}
}

// TestRangeCoversUncommittedDelete: a row deleted by an uncommitted
// transaction has no store key, but its lock-table entry anchors a
// fragment, so the range still conflicts with the deleter's images.
func TestRangeCoversUncommittedDelete(t *testing.T) {
	m := NewManagerShards(4)
	// T1 "deletes" y (X lock with a matching before-image, nil after).
	if err := m.AcquireItem(1, "y", X, Images{Before: row(50)}); err != nil {
		t.Fatal(err)
	}
	// T2 scans; the anchor list (from the store) no longer includes y.
	got := make(chan error, 1)
	go func() {
		_, err := m.AcquireRange(2, rangeSpec(ge(10), "x"))
		got <- err
	}()
	select {
	case <-got:
		t.Fatal("range granted over an uncommitted matching delete")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	// Once the delete commits the row is gone, so a re-write of y is an
	// insert and goes through the gap check, where the scan's coverage
	// (here the supremum fragment above anchor x) still blocks it.
	got2 := make(chan error, 1)
	go func() { got2 <- m.AcquireGap(3, "y", Images{After: row(60)}) }()
	select {
	case <-got2:
		t.Fatal("matching write of the deleted key not covered")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-got2; err != nil {
		t.Fatal(err)
	}
}

// TestStaleAnchorDoesNotShadowCoverage: an anchor left behind by a key
// that left the store (aborted insert, committed delete) must not shadow
// a newer scan's gap coverage. gapCoverLocked consults only the smallest
// anchor at or above the insert, so a scan installed after the stale
// anchor appeared must anchor there too — the regression is a
// SERIALIZABLE phantom admitted through the shadowed gap.
func TestStaleAnchorDoesNotShadowCoverage(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		m := NewManagerShards(shards)
		// T5 scans anchors {a, r} for val >= 50.
		h5 := mustRange(t, m, 5, rangeSpec(ge(50), "a", "r"))
		// T0 inserts the non-matching key m (allowed; inherits T5's
		// fragment onto anchor m), then goes away — the store-side abort
		// removes the row, but the anchor at m stays while T5 lives.
		if err := m.AcquireGap(0, "m", Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		if err := m.AcquireItem(0, "m", X, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(0)
		// T4 scans for val >= 10 — its anchor list (from the store) no
		// longer contains m, but the manager must anchor its fragments at
		// the stale anchor anyway.
		mustRange(t, m, 4, rangeSpec(ge(10), "a", "r"))
		// Insert at g (a < g < m) matching T4's predicate but not T5's:
		// the covering anchor is m; T4's coverage must be found there.
		got := make(chan error, 1)
		go func() { got <- m.AcquireGap(6, "g", Images{After: row(20)}) }()
		select {
		case <-got:
			t.Fatalf("shards=%d: stale anchor shadowed T4's gap coverage — matching insert admitted", shards)
		case <-time.After(50 * time.Millisecond):
		}
		m.ReleaseAll(4)
		if err := <-got; err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		m.ReleaseAll(5)
		m.ReleaseAll(6)
		_ = h5
	}
}

// TestRangeStripeParity: every behavior above must be identical at any
// stripe count (fragments land wherever their anchors hash).
func TestRangeStripeParity(t *testing.T) {
	for _, shards := range []int{1, 2, 16, 64} {
		m := NewManagerShards(shards)
		mustRange(t, m, 1, rangeSpec(ge(10), "a", "b", "c", "d", "e"))
		if err := m.AcquireItem(2, "c", X, Images{Before: row(1), After: row(2)}); err != nil {
			t.Fatalf("shards=%d: non-matching write blocked: %v", shards, err)
		}
		blocked := make(chan error, 1)
		go func() { blocked <- m.AcquireGap(3, "bb", Images{After: row(11)}) }()
		select {
		case <-blocked:
			t.Fatalf("shards=%d: matching insert not blocked", shards)
		case <-time.After(30 * time.Millisecond):
		}
		m.ReleaseAll(1)
		if err := <-blocked; err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if st := m.Stats(); st.GateAcquires != 0 {
			t.Fatalf("shards=%d: GateAcquires = %d", shards, st.GateAcquires)
		}
	}
}
