package lock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

func row(v int64) data.Row { return data.Scalar(v) }

func TestSharedLocksCompatible(t *testing.T) {
	m := NewManager()
	if err := m.AcquireItem(1, "x", S, Images{Before: row(1)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireItem(2, "x", S, Images{Before: row(1)}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("S+S blocked")
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	m := NewManager()
	if err := m.AcquireItem(1, "x", X, Images{After: row(2)}); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.AcquireItem(2, "x", S, Images{}) }()
	select {
	case <-got:
		t.Fatal("S acquired while X held")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("S never granted after release")
	}
}

func TestReacquireSameModeRefCounted(t *testing.T) {
	m := NewManager()
	if err := m.AcquireItem(1, "x", S, Images{}); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireItem(1, "x", S, Images{}); err != nil {
		t.Fatal(err)
	}
	m.ReleaseItem(1, "x")
	if _, held := m.Holding(1, "x"); !held {
		t.Fatal("lock dropped after single release of double acquire")
	}
	m.ReleaseItem(1, "x")
	if _, held := m.Holding(1, "x"); held {
		t.Fatal("lock survived matching releases")
	}
}

func TestXCoversS(t *testing.T) {
	m := NewManager()
	if err := m.AcquireItem(1, "x", X, Images{}); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireItem(1, "x", S, Images{}); err != nil {
		t.Fatal(err) // own X covers S, no self-deadlock
	}
	if mode, held := m.Holding(1, "x"); !held || mode != X {
		t.Fatal("mode should remain X")
	}
}

func TestUpgradeWaitsForOtherReader(t *testing.T) {
	m := NewManager()
	_ = m.AcquireItem(1, "x", S, Images{})
	_ = m.AcquireItem(2, "x", S, Images{})
	done := make(chan error, 1)
	go func() { done <- m.AcquireItem(1, "x", X, Images{After: row(9)}) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while other S held")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.Holding(1, "x"); mode != X {
		t.Fatal("upgrade did not take effect")
	}
}

// The classic upgrade deadlock: two readers both upgrade. The second
// upgrader must get ErrDeadlock immediately.
func TestUpgradeDeadlockDetected(t *testing.T) {
	m := NewManager()
	_ = m.AcquireItem(1, "x", S, Images{})
	_ = m.AcquireItem(2, "x", S, Images{})
	first := make(chan error, 1)
	go func() { first <- m.AcquireItem(1, "x", X, Images{}) }()
	time.Sleep(20 * time.Millisecond) // let T1's upgrade enqueue
	err := m.AcquireItem(2, "x", X, Images{})
	if err != ErrDeadlock {
		t.Fatalf("second upgrader got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2) // victim aborts
	if err := <-first; err != nil {
		t.Fatalf("survivor's upgrade failed: %v", err)
	}
}

func TestTwoItemDeadlockDetected(t *testing.T) {
	m := NewManager()
	_ = m.AcquireItem(1, "x", X, Images{})
	_ = m.AcquireItem(2, "y", X, Images{})
	first := make(chan error, 1)
	go func() { first <- m.AcquireItem(1, "y", X, Images{}) }() // T1 waits on T2
	time.Sleep(20 * time.Millisecond)
	err := m.AcquireItem(2, "x", X, Images{}) // closes the cycle
	if err != ErrDeadlock {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

// Three-party deadlock through a chain of waits.
func TestThreePartyDeadlock(t *testing.T) {
	m := NewManager()
	_ = m.AcquireItem(1, "a", X, Images{})
	_ = m.AcquireItem(2, "b", X, Images{})
	_ = m.AcquireItem(3, "c", X, Images{})
	e1 := make(chan error, 1)
	e2 := make(chan error, 1)
	go func() { e1 <- m.AcquireItem(1, "b", X, Images{}) }()
	time.Sleep(20 * time.Millisecond)
	go func() { e2 <- m.AcquireItem(2, "c", X, Images{}) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.AcquireItem(3, "a", X, Images{}); err != ErrDeadlock {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(3)
	if err := <-e2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-e1; err != nil {
		t.Fatal(err)
	}
}

func TestPredicateBlocksMatchingWrite(t *testing.T) {
	m := NewManager()
	p := predicate.MustParse("active == 1")
	h, err := m.AcquirePred(1, p, S)
	if err != nil {
		t.Fatal(err)
	}
	// Insert of a matching row (phantom) must block.
	done := make(chan error, 1)
	go func() {
		done <- m.AcquireItem(2, "emp:9", X, Images{After: data.Row{"active": 1}})
	}()
	select {
	case <-done:
		t.Fatal("phantom insert not blocked by predicate lock")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleasePred(1, h)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPredicateIgnoresNonMatchingWrite(t *testing.T) {
	m := NewManager()
	p := predicate.MustParse("active == 1")
	if _, err := m.AcquirePred(1, p, S); err != nil {
		t.Fatal(err)
	}
	// Insert of a non-matching row sails through.
	if err := m.AcquireItem(2, "emp:9", X, Images{After: data.Row{"active": 0}}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateConflictsWithHeldWrite(t *testing.T) {
	m := NewManager()
	// T1 holds X with a matching after-image; T2's predicate read must wait.
	_ = m.AcquireItem(1, "emp:9", X, Images{After: data.Row{"active": 1}})
	done := make(chan error, 1)
	go func() {
		_, err := m.AcquirePred(2, predicate.MustParse("active == 1"), S)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("predicate read not blocked by matching write lock")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPredicateVsPredicateConservative(t *testing.T) {
	m := NewManager()
	if _, err := m.AcquirePred(1, predicate.MustParse("a == 1"), S); err != nil {
		t.Fatal(err)
	}
	// X predicate on a non-provably-disjoint predicate blocks.
	done := make(chan error, 1)
	go func() {
		_, err := m.AcquirePred(2, predicate.MustParse("b == 2"), X)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("conservative predicate-predicate conflict missed")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	// Provably disjoint predicates do not conflict.
	if _, err := m.AcquirePred(3, predicate.MustParse("a == 1"), S); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AcquirePred(4, predicate.MustParse("a == 2"), X); err != nil {
		t.Fatal(err)
	}
}

func TestSamePredSharedLocksCompatible(t *testing.T) {
	m := NewManager()
	p := predicate.MustParse("a == 1")
	if _, err := m.AcquirePred(1, p, S); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AcquirePred(2, p, S); err != nil {
		t.Fatal(err)
	}
}

func TestReadImageConflictsWithPredX(t *testing.T) {
	m := NewManager()
	// T1 holds a predicate WRITE lock (e.g. UPDATE WHERE active==1).
	if _, err := m.AcquirePred(1, predicate.MustParse("active == 1"), X); err != nil {
		t.Fatal(err)
	}
	// T2 reading a matching row must wait (read image conflicts).
	done := make(chan error, 1)
	go func() {
		done <- m.AcquireItem(2, "emp:1", S, Images{Before: data.Row{"active": 1}})
	}()
	select {
	case <-done:
		t.Fatal("read of covered row not blocked by predicate X lock")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

type recordingObserver struct {
	mu      sync.Mutex
	waits   []TxID
	granted []TxID
}

func (o *recordingObserver) TxWaiting(tx TxID, on []TxID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.waits = append(o.waits, tx)
}

func (o *recordingObserver) TxGranted(tx TxID) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.granted = append(o.granted, tx)
}

func TestObserverSeesWaitAndGrant(t *testing.T) {
	m := NewManager()
	o := &recordingObserver{}
	m.SetObserver(o)
	_ = m.AcquireItem(1, "x", X, Images{})
	done := make(chan error, 1)
	go func() { done <- m.AcquireItem(2, "x", X, Images{}) }()
	deadline := time.Now().Add(time.Second)
	for {
		o.mu.Lock()
		n := len(o.waits)
		o.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("observer never saw the wait")
		}
		time.Sleep(time.Millisecond)
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.granted) != 1 || o.granted[0] != 2 {
		t.Fatalf("granted = %v", o.granted)
	}
	if o.waits[0] != 2 {
		t.Fatalf("waits = %v", o.waits)
	}
}

func TestReleaseAllCancelsQueuedRequests(t *testing.T) {
	m := NewManager()
	_ = m.AcquireItem(1, "x", X, Images{})
	done := make(chan error, 1)
	go func() { done <- m.AcquireItem(2, "x", X, Images{}) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(2)
	if err := <-done; err == nil {
		t.Fatal("cancelled request returned nil")
	}
	// Lock still held by T1.
	if _, held := m.Holding(1, "x"); !held {
		t.Fatal("T1 lost its lock")
	}
}

func TestStatsCount(t *testing.T) {
	m := NewManager()
	_ = m.AcquireItem(1, "x", X, Images{})
	go func() {
		_ = m.AcquireItem(2, "x", S, Images{})
	}()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	deadline := time.Now().Add(time.Second)
	for m.QueueLen() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := m.Stats()
	if st.Grants < 2 || st.Waits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Mutual exclusion invariant under concurrent hammering: a critical section
// guarded by an X lock is never entered by two goroutines at once.
func TestMutualExclusionStress(t *testing.T) {
	m := NewManager()
	var inside int32
	var violations int32
	var wg sync.WaitGroup
	for tx := 1; tx <= 8; tx++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := m.AcquireItem(tx, "hot", X, Images{}); err != nil {
					continue // deadlock impossible here, but be safe
				}
				if atomic.AddInt32(&inside, 1) != 1 {
					atomic.AddInt32(&violations, 1)
				}
				atomic.AddInt32(&inside, -1)
				m.ReleaseItem(tx, "hot")
			}
		}(TxID(tx))
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mutual exclusion violations", violations)
	}
}

// Random lock/unlock stress with S and X modes across several keys; checks
// the invariant that X excludes everything and S excludes X.
func TestModeInvariantStress(t *testing.T) {
	m := NewManager()
	keys := []data.Key{"a", "b", "c"}
	type state struct {
		mu      sync.Mutex
		readers map[data.Key]int
		writers map[data.Key]int
	}
	st := &state{readers: map[data.Key]int{}, writers: map[data.Key]int{}}
	var violations int32
	var wg sync.WaitGroup
	for tx := 1; tx <= 6; tx++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(tx)))
			for i := 0; i < 150; i++ {
				k := keys[r.Intn(len(keys))]
				if r.Intn(2) == 0 {
					if err := m.AcquireItem(tx, k, S, Images{}); err != nil {
						continue
					}
					st.mu.Lock()
					if st.writers[k] > 0 {
						atomic.AddInt32(&violations, 1)
					}
					st.readers[k]++
					st.mu.Unlock()
					st.mu.Lock()
					st.readers[k]--
					st.mu.Unlock()
					m.ReleaseItem(tx, k)
				} else {
					if err := m.AcquireItem(tx, k, X, Images{}); err != nil {
						continue
					}
					st.mu.Lock()
					if st.writers[k] > 0 || st.readers[k] > 0 {
						atomic.AddInt32(&violations, 1)
					}
					st.writers[k]++
					st.mu.Unlock()
					st.mu.Lock()
					st.writers[k]--
					st.mu.Unlock()
					m.ReleaseItem(tx, k)
				}
			}
		}(TxID(tx))
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d mode invariant violations", violations)
	}
}

// Deadlock-freedom of the detector: with random two-key transactions,
// every acquire eventually returns (granted or ErrDeadlock); the test
// itself finishing is the assertion.
func TestNoUndetectedDeadlockStress(t *testing.T) {
	m := NewManager()
	keys := []data.Key{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for tx := 1; tx <= 6; tx++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(tx) * 77))
			for i := 0; i < 100; i++ {
				k1 := keys[r.Intn(len(keys))]
				k2 := keys[r.Intn(len(keys))]
				if err := m.AcquireItem(tx, k1, X, Images{}); err != nil {
					continue
				}
				if k2 != k1 {
					if err := m.AcquireItem(tx, k2, X, Images{}); err != nil {
						m.ReleaseAll(tx) // victim: drop everything
						continue
					}
				}
				m.ReleaseAll(tx)
			}
		}(TxID(tx))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test hung: undetected deadlock")
	}
}

func TestModeString(t *testing.T) {
	if S.String() != "S" || X.String() != "X" {
		t.Fatal("mode strings")
	}
}
