package obs

import (
	"fmt"
	"strings"
	"sync"
)

// EventKind classifies flight-recorder events. The vocabulary is the
// paper's lock-protocol lifecycle: a transaction begins at a level,
// waits for and is granted item/predicate/range/gap locks, upgrades
// read locks to write locks, may be escalated to a coarse stripe lock
// or chosen as a deadlock victim, and finally commits or aborts.
type EventKind uint8

const (
	EvBegin    EventKind = iota // tx begins; Level carries the isolation level code
	EvWait                      // lock request blocked; Aux is the first blocking tx
	EvGrant                     // blocked request granted; Aux is the wait duration
	EvUpgrade                   // read lock upgraded to write on Key
	EvEscalate                  // stripe escalated to a coarse lock; Stripe set
	EvGCSweep                   // dead-anchor fragment GC; Aux is fragments reclaimed
	EvCommit                    // tx committed
	EvAbort                     // tx aborted
	EvDeadlock                  // tx chosen as deadlock victim; Aux is cycle length
)

var evNames = [...]string{
	EvBegin:    "begin",
	EvWait:     "wait",
	EvGrant:    "grant",
	EvUpgrade:  "upgrade",
	EvEscalate: "escalate",
	EvGCSweep:  "gc-sweep",
	EvCommit:   "commit",
	EvAbort:    "abort",
	EvDeadlock: "deadlock",
}

func (k EventKind) String() string {
	if int(k) < len(evNames) {
		return evNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one flight-recorder entry. Fields that don't apply to a kind
// are zero ("" / -1 / 0) and omitted from the rendering.
type Event struct {
	Tick   int64     // clock instant (ticks or ns, per the sink's Clock)
	Kind   EventKind
	Tx     int       // transaction id
	Key    string    // data item, anchor, or predicate tag; "" if none
	Stripe int       // lock-table stripe; -1 if not stripe-scoped
	Class  string    // lock class: item/pred/range/gap; "" if not a lock event
	Level  string    // isolation level code on EvBegin; "" otherwise
	Aux    int64     // kind-specific (see EventKind comments)
}

// String renders the event as one stable line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d] T%d %s", e.Tick, e.Tx, e.Kind)
	if e.Level != "" {
		fmt.Fprintf(&b, " level=%s", e.Level)
	}
	if e.Class != "" {
		fmt.Fprintf(&b, " %s", e.Class)
	}
	if e.Key != "" {
		fmt.Fprintf(&b, " key=%s", e.Key)
	}
	if e.Stripe >= 0 {
		fmt.Fprintf(&b, " stripe=%d", e.Stripe)
	}
	switch e.Kind {
	case EvWait:
		fmt.Fprintf(&b, " on=T%d", e.Aux)
	case EvGrant:
		fmt.Fprintf(&b, " waited=%d", e.Aux)
	case EvGCSweep:
		fmt.Fprintf(&b, " reclaimed=%d", e.Aux)
	case EvDeadlock:
		fmt.Fprintf(&b, " cycle=%d", e.Aux)
	}
	return b.String()
}

// FlightRecorder is a bounded ring buffer of Events. Writers overwrite
// the oldest entry once the ring is full; readers get events in record
// order. The mutex is internal to obs and is never held while calling
// back into engine code, so it sits strictly innermost relative to every
// engine latch (the obslatch isolint fixture documents that contract).
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	total int64 // events ever recorded; buf[total%len] is the next slot
}

// NewFlightRecorder returns a recorder holding the last size events
// (minimum 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{buf: make([]Event, size)}
}

// Add records an event, overwriting the oldest if the ring is full.
// Nil-safe.
func (r *FlightRecorder) Add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.total%int64(len(r.buf))] = ev
	r.total++
	r.mu.Unlock()
}

// Total returns how many events were ever recorded (including
// overwritten ones). Nil-safe.
func (r *FlightRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events, oldest first. Nil-safe.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	size := int64(len(r.buf))
	if n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := r.total - n; i < r.total; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}

// Tail returns the last n retained events, oldest first.
func (r *FlightRecorder) Tail(n int) []Event {
	evs := r.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// TailStrings renders Tail(n) one line per event.
func (r *FlightRecorder) TailStrings(n int) []string {
	evs := r.Tail(n)
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}
