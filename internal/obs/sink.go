package obs

import (
	"fmt"
	"strings"
)

// Lock classes tagged on wait/grant events, matching the manager's four
// lock namespaces.
const (
	ClassItem  = "item"
	ClassPred  = "pred"
	ClassRange = "range"
	ClassGap   = "gap"
)

// Sink bundles one engine instance's observability state: a Clock, the
// latency histograms, and an optional flight recorder. Every method is
// safe on a nil *Sink and does nothing, so engines keep a plain `obs
// *obs.Sink` field and call hooks unconditionally — the disabled path is
// a nil check, no allocation, no interface dispatch.
//
// A Sink never calls back into engine code and takes no engine latches;
// its only internal lock is the flight recorder's mutex, which is
// therefore strictly innermost in any latch order.
type Sink struct {
	clock  Clock
	Flight *FlightRecorder

	// Latency histograms, in the Clock's unit (ns or virtual ticks).
	Txn         *Histogram // whole transaction, begin to commit/abort (workload driver)
	Op          *Histogram // single engine op (get/put/select)
	CommitPath  *Histogram // commit path
	LockWait    *Histogram // item + predicate lock waits
	RangeWait   *Histogram // key-range + gap lock waits
	GateHold    *Histogram // exclusive predicate-gate hold
	RangeMuHold *Histogram // rangeMu hold
	Scan        *Histogram // store scan (sv.Select)

	onDeadlock func(dump string)
}

// NewSink returns a Sink over the given clock with all histograms
// allocated and no flight recorder.
func NewSink(c Clock) *Sink {
	return &Sink{
		clock:       c,
		Txn:         &Histogram{},
		Op:          &Histogram{},
		CommitPath:  &Histogram{},
		LockWait:    &Histogram{},
		RangeWait:   &Histogram{},
		GateHold:    &Histogram{},
		RangeMuHold: &Histogram{},
		Scan:        &Histogram{},
	}
}

// WithFlight attaches a flight recorder holding the last n events and
// returns the sink.
func (s *Sink) WithFlight(n int) *Sink {
	s.Flight = NewFlightRecorder(n)
	return s
}

// OnDeadlock registers a callback invoked with the flight-recorder dump
// each time a deadlock victim is selected. The callback runs on the
// victim's goroutine while engine latches may be held: it must not call
// back into the engine (stash the string and return).
func (s *Sink) OnDeadlock(f func(dump string)) {
	if s != nil {
		s.onDeadlock = f
	}
}

// Now returns the sink clock's current instant, or 0 on a nil sink.
// Callers pair it with a Record* method; 0 start values on the nil path
// are never recorded because the Record* call is a no-op too.
func (s *Sink) Now() int64 {
	if s == nil {
		return 0
	}
	return s.clock.Now()
}

func (s *Sink) event(ev Event) int64 {
	tick := s.clock.Now()
	if s.Flight != nil {
		ev.Tick = tick
		s.Flight.Add(ev)
	}
	return tick
}

// Begin records a transaction-begin event at an isolation level.
func (s *Sink) Begin(tx int, level string) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvBegin, Tx: tx, Stripe: -1, Level: level})
}

// Wait records a lock request blocking behind tx on.
func (s *Sink) Wait(class string, tx int, key string, stripe int, on int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvWait, Tx: tx, Key: key, Stripe: stripe, Class: class, Aux: int64(on)})
}

// Granted records a formerly blocked request being granted, measuring the
// wait from start (a prior Now()) into the class's wait histogram.
func (s *Sink) Granted(class string, tx int, key string, stripe int, start int64) {
	if s == nil {
		return
	}
	now := s.clock.Now()
	waited := now - start
	if waited < 0 {
		waited = 0
	}
	switch class {
	case ClassRange, ClassGap:
		s.RangeWait.Record(waited)
	default:
		s.LockWait.Record(waited)
	}
	if s.Flight != nil {
		s.Flight.Add(Event{Tick: now, Kind: EvGrant, Tx: tx, Key: key, Stripe: stripe, Class: class, Aux: waited})
	}
}

// Upgrade records a read-to-write lock upgrade.
func (s *Sink) Upgrade(tx int, key string, stripe int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvUpgrade, Tx: tx, Key: key, Stripe: stripe})
}

// Escalate records a stripe's key-range locks escalating to a coarse
// stripe lock.
func (s *Sink) Escalate(tx int, stripe int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvEscalate, Tx: tx, Stripe: stripe})
}

// GCSweep records a dead-anchor fragment GC pass reclaiming n fragments.
func (s *Sink) GCSweep(stripe int, reclaimed int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvGCSweep, Tx: 0, Stripe: stripe, Aux: int64(reclaimed)})
}

// Commit records a transaction commit.
func (s *Sink) Commit(tx int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvCommit, Tx: tx, Stripe: -1})
}

// Abort records a transaction abort.
func (s *Sink) Abort(tx int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvAbort, Tx: tx, Stripe: -1})
}

// Deadlock records victim selection and, if a callback is registered,
// delivers the flight-recorder dump for the waits-for cycle.
func (s *Sink) Deadlock(victim int, cycle []int) {
	if s == nil {
		return
	}
	s.event(Event{Kind: EvDeadlock, Tx: victim, Stripe: -1, Aux: int64(len(cycle))})
	if s.onDeadlock != nil {
		s.onDeadlock(s.DeadlockDump(victim, cycle, 8))
	}
}

// DeadlockDump renders a deadlock report: the victim, the waits-for
// cycle, and the last n flight-recorder events of each participant.
func (s *Sink) DeadlockDump(victim int, cycle []int, n int) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock: victim T%d\n", victim)
	b.WriteString("waits-for cycle:")
	for i, tx := range cycle {
		if i > 0 {
			b.WriteString(" ->")
		}
		fmt.Fprintf(&b, " T%d", tx)
	}
	b.WriteString("\n")
	if s.Flight == nil {
		b.WriteString("(no flight recorder attached)\n")
		return b.String()
	}
	in := make(map[int]bool, len(cycle))
	for _, tx := range cycle {
		in[tx] = true
	}
	fmt.Fprintf(&b, "last %d events per participant:\n", n)
	evs := s.Flight.Events()
	kept := make(map[int]int, len(cycle))
	// Count from the tail so each participant keeps its most recent n.
	keep := make([]bool, len(evs))
	for i := len(evs) - 1; i >= 0; i-- {
		tx := evs[i].Tx
		if in[tx] && kept[tx] < n {
			keep[i] = true
			kept[tx]++
		}
	}
	for i, e := range evs {
		if keep[i] {
			fmt.Fprintf(&b, "  %s\n", e.String())
		}
	}
	return b.String()
}

// RecordTxn, RecordOp, RecordCommitLatency, RecordGateHold,
// RecordRangeMuHold, and RecordScan measure from start (a prior Now())
// into the corresponding histogram. Nil-safe.

func (s *Sink) RecordTxn(start int64) {
	if s == nil {
		return
	}
	s.Txn.Record(s.clock.Now() - start)
}

func (s *Sink) RecordOp(start int64) {
	if s == nil {
		return
	}
	s.Op.Record(s.clock.Now() - start)
}

func (s *Sink) RecordCommitLatency(start int64) {
	if s == nil {
		return
	}
	s.CommitPath.Record(s.clock.Now() - start)
}

func (s *Sink) RecordGateHold(start int64) {
	if s == nil {
		return
	}
	s.GateHold.Record(s.clock.Now() - start)
}

func (s *Sink) RecordRangeMuHold(start int64) {
	if s == nil {
		return
	}
	s.RangeMuHold.Record(s.clock.Now() - start)
}

func (s *Sink) RecordScan(start int64) {
	if s == nil {
		return
	}
	s.Scan.Record(s.clock.Now() - start)
}

// NamedHist pairs a histogram with its stable metric name.
type NamedHist struct {
	Name string
	H    *Histogram
}

// Histograms enumerates the sink's histograms in a fixed display order.
// Nil-safe: a nil sink yields nil.
func (s *Sink) Histograms() []NamedHist {
	if s == nil {
		return nil
	}
	return []NamedHist{
		{"txn_latency", s.Txn},
		{"op_latency", s.Op},
		{"commit_latency", s.CommitPath},
		{"lock_wait", s.LockWait},
		{"range_wait", s.RangeWait},
		{"gate_hold", s.GateHold},
		{"rangemu_hold", s.RangeMuHold},
		{"store_scan", s.Scan},
	}
}
