// Package obs is the engine observability layer: latency histograms,
// a flight recorder, and Prometheus text rendering, built to be safe in
// the repo's deterministic core.
//
// The package is split along the determinism boundary. Everything here
// is pure data + a Clock interface, so the fuzzer can run with a
// VirtualClock (event ticks) and stay byte-for-byte reproducible; the
// wall clock lives in internal/obs/wallclock and the HTTP endpoint in
// internal/obs/obshttp, both outside the deterministic set. Every hook
// on Sink is nil-safe, so engines instrument unconditionally and a
// disabled sink costs one nil check — no allocation, no lock, no time
// read.
//
//isolint:deterministic
package obs
