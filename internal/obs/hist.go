package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear HDR-style histogram: below histSub the buckets are exact
// (one value per bucket); above, each power-of-two octave is split into
// histSub linear sub-buckets, so relative error is bounded by 1/histSub
// at any magnitude. Bucket boundaries are fixed at compile time — no
// rescaling, no allocation after construction — and every counter is an
// atomic, so Record is safe from any number of writers and never takes a
// lock. 488 buckets cover all of [0, 1<<63) at 8 sub-buckets per octave;
// the last bucket's bound saturates at MaxInt64.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = 488
)

// Histogram is a fixed-boundary latency histogram. The zero value is
// ready to use; a nil *Histogram is a no-op sink (Record returns
// immediately), which is what keeps instrumented-but-disabled hot paths
// allocation- and branch-cheap.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v) >= histSubBits
	idx := (e-histSubBits+1)*histSub + int(v>>uint(e-histSubBits)) - histSub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	if i >= histBuckets-1 {
		// (16)<<59 would overflow; the top bucket holds [2^62·15/8, 2^63).
		return math.MaxInt64
	}
	g := i / histSub // octave group, >= 1
	m := i % histSub
	return (int64(m)+histSub+1)<<uint(g-1) - 1
}

// Record adds one observation. Negative values clamp to zero. Safe for
// concurrent use; nil-safe.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to merge and
// query without synchronization. Count is derived from the bucket counts
// so a snapshot is always internally consistent; taken concurrently with
// writers it may trail Sum/Max by in-flight records, which is fine — the
// exactness guarantee is at quiescence.
type HistSnapshot struct {
	Count  int64
	Sum    int64
	Max    int64
	counts [histBuckets]int64
}

// Snapshot copies the histogram's counters. Nil-safe: a nil histogram
// yields an empty snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Merge adds another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// inclusive bound of the bucket holding the ceil(q*Count)-th observation,
// capped at the true observed Max so Quantile(1) == Max exactly.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q*float64(s.Count) + 0.999999)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum int64
	for i := range s.counts {
		cum += s.counts[i]
		if cum >= target {
			b := bucketBound(i)
			if b > s.Max {
				b = s.Max
			}
			return b
		}
	}
	return s.Max
}

// P50, P90, P99 are the conventional percentile shorthands.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }
func (s HistSnapshot) P90() int64 { return s.Quantile(0.90) }
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// Summary renders the snapshot as one stable line of k=v pairs.
func (s HistSnapshot) Summary() string {
	return fmt.Sprintf("count=%d p50=%d p90=%d p99=%d max=%d",
		s.Count, s.P50(), s.P90(), s.P99(), s.Max)
}
