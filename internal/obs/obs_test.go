package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose inclusive bound is >= the
	// value, and bucket bounds must be strictly increasing.
	vals := []int64{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		i := bucketOf(v)
		if b := bucketBound(i); b < v {
			t.Errorf("bucketBound(bucketOf(%d)) = %d < value", v, b)
		}
		if i > 0 && bucketBound(i-1) >= v {
			t.Errorf("value %d should not fit in bucket %d (bound %d)", v, i-1, bucketBound(i-1))
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketBound(i) <= bucketBound(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %d <= %d", i, bucketBound(i), bucketBound(i-1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum=%d", s.Sum)
	}
	// Bucketed quantiles are upper bounds with <= 1/8 relative error.
	if p := s.P50(); p < 50 || p > 57 {
		t.Errorf("p50=%d, want in [50,57]", p)
	}
	if p := s.P99(); p < 99 || p > 100 {
		t.Errorf("p99=%d, want in [99,100]", p)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("quantile(1)=%d, want exactly max", q)
	}
	var empty HistSnapshot
	if empty.P50() != 0 || empty.Quantile(1) != 0 {
		t.Errorf("empty snapshot quantiles must be 0")
	}
}

// TestHistogramConcurrent hammers one histogram from many writers while
// snapshots are taken mid-flight, then checks the merged quiescent
// totals exactly. Run under -race this is also the data-race proof.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const writers = 8
	const perWriter = 10000
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	// Mid-flight snapshots: must be race-free and internally consistent
	// (Count == sum of bucket counts by construction).
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	var want int64
	var wantMu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local int64
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				h.Record(v)
				local += v
			}
			wantMu.Lock()
			want += local
			wantMu.Unlock()
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count=%d, want %d", s.Count, writers*perWriter)
	}
	if s.Sum != want {
		t.Fatalf("sum=%d, want %d", s.Sum, want)
	}
	if s.Max != int64(writers*perWriter-1) {
		t.Fatalf("max=%d, want %d", s.Max, writers*perWriter-1)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for v := int64(0); v < 1000; v++ {
		a.Record(v)
		b.Record(v * 3)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != sa.Count+sb.Count {
		t.Fatalf("merged count=%d", merged.Count)
	}
	if merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum=%d", merged.Sum)
	}
	if merged.Max != sb.Max {
		t.Fatalf("merged max=%d, want %d", merged.Max, sb.Max)
	}
	if merged.Quantile(1) != sb.Max {
		t.Fatalf("merged q1=%d", merged.Quantile(1))
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Add(Event{Tick: int64(i), Kind: EvCommit, Tx: i, Stripe: -1})
	}
	if r.Total() != 10 {
		t.Fatalf("total=%d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	// Oldest-first record order must survive wraparound.
	for i, e := range evs {
		if want := int64(7 + i); e.Tick != want {
			t.Fatalf("event %d tick=%d, want %d", i, e.Tick, want)
		}
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].Tick != 9 || tail[1].Tick != 10 {
		t.Fatalf("tail=%v", tail)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(Event{Kind: EvGrant, Tx: w, Stripe: -1})
				_ = r.Events()
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("total=%d", r.Total())
	}
}

func TestNilSinkIsNoOp(t *testing.T) {
	var s *Sink
	start := s.Now()
	s.Begin(1, "RR")
	s.Wait(ClassItem, 1, "x", 0, 2)
	s.Granted(ClassItem, 1, "x", 0, start)
	s.Upgrade(1, "x", 0)
	s.Escalate(1, 0)
	s.GCSweep(0, 3)
	s.Commit(1)
	s.Abort(1)
	s.Deadlock(1, []int{1, 2, 1})
	s.RecordTxn(start)
	s.RecordOp(start)
	s.RecordCommitLatency(start)
	s.RecordGateHold(start)
	s.RecordRangeMuHold(start)
	s.RecordScan(start)
	if s.Histograms() != nil || s.DeadlockDump(1, nil, 4) != "" {
		t.Fatal("nil sink must be inert")
	}
	var h *Histogram
	h.Record(5) // nil histogram no-op
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
}

func TestVirtualClockDeterminism(t *testing.T) {
	run := func() []string {
		s := NewSink(NewVirtualClock()).WithFlight(8)
		s.Begin(1, "SER")
		st := s.Now()
		s.Wait(ClassRange, 2, "k3", 1, 1)
		s.Granted(ClassRange, 2, "k3", 1, st)
		s.Commit(1)
		return s.Flight.TailStrings(8)
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("virtual-clock runs diverge:\n%v\n%v", a, b)
	}
}

func TestDeadlockDump(t *testing.T) {
	s := NewSink(NewVirtualClock()).WithFlight(32)
	s.Begin(1, "RR")
	s.Begin(2, "RR")
	s.Begin(3, "RR") // bystander: must not appear in the dump
	s.Wait(ClassItem, 1, "a", 0, 2)
	s.Wait(ClassItem, 2, "b", 1, 1)
	var got string
	s.OnDeadlock(func(d string) { got = d })
	s.Deadlock(2, []int{2, 1, 2})
	if got == "" {
		t.Fatal("OnDeadlock not invoked")
	}
	for _, want := range []string{"victim T2", "T2 -> T1 -> T2", "T1 wait item key=a stripe=0 on=T2", "T2 deadlock"} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "T3") {
		t.Errorf("dump includes bystander T3:\n%s", got)
	}
}

func TestWriteMetrics(t *testing.T) {
	s := NewSink(NewVirtualClock())
	for i := int64(1); i <= 10; i++ {
		s.Op.Record(i)
	}
	var b strings.Builder
	WriteMetrics(&b, s, map[string]int64{"lock_grants": 42, "lock_deadlocks": 1})
	out := b.String()
	for _, want := range []string{
		"# TYPE isolevel_op_latency summary",
		`isolevel_op_latency{quantile="0.99"}`,
		"isolevel_op_latency_count 10",
		"isolevel_op_latency_sum 55",
		"# TYPE isolevel_lock_grants_total counter",
		"isolevel_lock_grants_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	// Counters must render in sorted order for byte-stable pages.
	if strings.Index(out, "lock_deadlocks_total") > strings.Index(out, "lock_grants_total") {
		t.Error("counters not sorted")
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Tick: 3, Kind: EvBegin, Tx: 1, Stripe: -1, Level: "RR"}, "[3] T1 begin level=RR"},
		{Event{Tick: 4, Kind: EvWait, Tx: 2, Key: "x", Stripe: 5, Class: ClassGap, Aux: 7}, "[4] T2 wait gap key=x stripe=5 on=T7"},
		{Event{Tick: 9, Kind: EvGCSweep, Stripe: 2, Aux: 12}, "[9] T0 gc-sweep stripe=2 reclaimed=12"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
	if fmt.Sprint(EvDeadlock) != "deadlock" {
		t.Error("EventKind.String")
	}
}
