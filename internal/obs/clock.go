package obs

import "sync/atomic"

// Clock is the time source behind every histogram and flight-recorder
// timestamp. Two implementations exist on purpose:
//
//   - VirtualClock (this package): a deterministic event-tick counter for
//     the fuzzer and scripted runs, where isolint's seededrand rule bans
//     the wall clock and byte-identical output is a hard requirement.
//   - wallclock.Real (internal/obs/wallclock): monotonic real time for
//     bench mode, kept in a separate non-deterministic package so this
//     one stays //isolint:deterministic without waivers.
//
// A Clock's unit is therefore either "ticks" or "nanoseconds"; consumers
// must not assume one or the other when rendering.
type Clock interface {
	// Now returns the current instant. VirtualClock advances one tick
	// per call, so Now doubles as the event sequencer in scripted runs.
	Now() int64
}

// VirtualClock is a deterministic Clock: each Now() call returns the next
// integer tick. Because the schedule runner executes at most one engine
// op at a time, tick order is a pure function of the schedule — identical
// across reruns, worker counts, GOMAXPROCS, and -race.
type VirtualClock struct {
	ticks atomic.Int64
}

// NewVirtualClock returns a VirtualClock starting at tick 1.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now advances and returns the tick counter.
func (c *VirtualClock) Now() int64 { return c.ticks.Add(1) }
