package obs

import (
	"fmt"
	"io"
	"sort"
)

// WriteMetrics renders the sink's histograms, any extra named histograms
// (server-side statement latency, load-generator latency), and an optional
// flat counter map in Prometheus text exposition format. Histograms come
// out as summaries (quantile-labelled gauges plus _sum/_count); counters
// as isolevel_<name>_total. Counter names are emitted in sorted order so
// the page is byte-stable for a given state.
//
// The value unit is the sink clock's unit: nanoseconds under the real
// clock, virtual ticks under VirtualClock. The endpoint is only wired
// up in serving paths (real clock), so scrapers see nanoseconds.
func WriteMetrics(w io.Writer, s *Sink, counters map[string]int64, extra ...NamedHist) {
	for _, nh := range append(s.Histograms(), extra...) {
		snap := nh.H.Snapshot()
		name := "isolevel_" + nh.Name
		fmt.Fprintf(w, "# HELP %s %s (clock units)\n", name, nh.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", name, snap.P50())
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %d\n", name, snap.P90())
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", name, snap.P99())
		fmt.Fprintf(w, "%s{quantile=\"1\"} %d\n", name, snap.Max)
		fmt.Fprintf(w, "%s_sum %d\n", name, snap.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
	}
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := "isolevel_" + name + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", full)
		fmt.Fprintf(w, "%s %d\n", full, counters[name])
	}
}
