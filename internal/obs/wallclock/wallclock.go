// Package wallclock is the non-deterministic half of internal/obs: a
// real monotonic Clock for bench mode. It is deliberately a separate
// package so internal/obs itself stays //isolint:deterministic — the
// only time.Now in the observability layer lives here, outside the
// deterministic set, where seededrand permits it.
package wallclock

import (
	"time"

	"isolevel/internal/obs"
)

type realClock struct{ base time.Time }

// Now returns nanoseconds since the clock was constructed, read off
// go's monotonic clock.
func (c realClock) Now() int64 { return int64(time.Since(c.base)) }

// New returns a Clock reporting monotonic nanoseconds.
func New() obs.Clock { return realClock{base: time.Now()} }
