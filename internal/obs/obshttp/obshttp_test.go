package obshttp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"isolevel/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoint(t *testing.T) {
	sink := obs.NewSink(obs.NewVirtualClock())
	sink.Op.Record(5)
	srv := httptest.NewServer(Handler(Source{
		Sink:     sink,
		Counters: func() map[string]int64 { return map[string]int64{"lock_grants": 7} },
	}))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"isolevel_op_latency_count 1", "isolevel_lock_grants_total 7"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body := get(t, srv, "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars status %d", code)
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestMetricsNilSource(t *testing.T) {
	srv := httptest.NewServer(Handler(Source{}))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if strings.Contains(body, "isolevel_") {
		t.Errorf("nil source should render an empty page, got:\n%s", body)
	}
}

// TestServeCloseLifecycle: Serve returns a closeable handle — scrapes work
// while it is up, Close drains and stops accepting, and a second Close is
// an idempotent no-op returning the first result.
func TestServeCloseLifecycle(t *testing.T) {
	stmt := new(obs.Histogram)
	stmt.Record(42)
	ep, err := Serve("127.0.0.1:0", Source{
		Counters: func() map[string]int64 { return map[string]int64{"server_commits": 3} },
		Hists:    func() []obs.NamedHist { return []obs.NamedHist{{Name: "server_stmt_latency", H: stmt}} },
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	url := "http://" + ep.Addr().String() + "/metrics"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for _, want := range []string{"isolevel_server_commits_total 3", "isolevel_server_stmt_latency_count 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Error("GET after Close succeeded, want connection error")
	}
}
