// Package obshttp serves the runtime observability endpoint: /metrics in
// Prometheus text format fed from histogram + engine counter snapshots,
// net/http/pprof under /debug/pprof/, and expvar under /debug/vars. It
// is stdlib-only and lives outside the deterministic set (net/http and
// pprof are free to read the wall clock).
package obshttp

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"isolevel/internal/obs"
)

// Source supplies the data behind /metrics. Sink may be nil (no
// histograms); Counters may be nil (no counters). Counters is called
// per scrape so the page tracks live engine state.
type Source struct {
	Sink     *obs.Sink
	Counters func() map[string]int64
}

// Handler returns the endpoint's mux: /metrics, /debug/pprof/*,
// /debug/vars.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var counters map[string]int64
		if src.Counters != nil {
			counters = src.Counters()
		}
		obs.WriteMetrics(w, src.Sink, counters)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "isolevel observability endpoint\n/metrics\n/debug/pprof/\n/debug/vars\n")
	})
	return mux
}

// Serve listens on addr and serves Handler(src) until the process
// exits. It returns the bound listener (so callers can report the
// actual port when addr ends in ":0"); serving happens on a background
// goroutine.
func Serve(addr string, src Source) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		srv := &http.Server{Handler: Handler(src)}
		_ = srv.Serve(ln)
	}()
	return ln, nil
}
