// Package obshttp serves the runtime observability endpoint: /metrics in
// Prometheus text format fed from histogram + engine counter snapshots,
// net/http/pprof under /debug/pprof/, and expvar under /debug/vars. It
// is stdlib-only and lives outside the deterministic set (net/http and
// pprof are free to read the wall clock).
package obshttp

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"isolevel/internal/obs"
)

// Source supplies the data behind /metrics. Sink may be nil (no
// histograms); Counters may be nil (no counters); Hists may be nil (no
// extra histograms). Counters and Hists are called per scrape so the
// page tracks live state — Hists carries histograms that live outside a
// Sink, like the server's statement-latency histogram.
type Source struct {
	Sink     *obs.Sink
	Counters func() map[string]int64
	Hists    func() []obs.NamedHist
}

// Handler returns the endpoint's mux: /metrics, /debug/pprof/*,
// /debug/vars.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var counters map[string]int64
		if src.Counters != nil {
			counters = src.Counters()
		}
		var extra []obs.NamedHist
		if src.Hists != nil {
			extra = src.Hists()
		}
		obs.WriteMetrics(w, src.Sink, counters, extra...)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "isolevel observability endpoint\n/metrics\n/debug/pprof/\n/debug/vars\n")
	})
	return mux
}

// Endpoint is a live observability endpoint: an http.Server serving
// Handler(src) on its own goroutine, with a graceful shutdown path.
type Endpoint struct {
	ln   net.Listener
	srv  *http.Server
	done chan error // the serve goroutine's exit error, exactly one send

	closeOnce sync.Once
	closeErr  error
}

// Serve listens on addr and serves Handler(src) on a background
// goroutine until Close. The returned Endpoint reports the bound
// address (so callers can print the actual port when addr ends in ":0")
// and owns the shutdown path; callers must Close it when the command
// finishes.
func Serve(addr string, src Source) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &Endpoint{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(src)},
		done: make(chan error, 1),
	}
	go func() { ep.done <- ep.srv.Serve(ln) }()
	return ep, nil
}

// Addr returns the endpoint's bound address.
func (e *Endpoint) Addr() net.Addr { return e.ln.Addr() }

// Close gracefully shuts the endpoint down: the listener stops
// accepting, in-flight scrapes drain (bounded by a short timeout,
// after which remaining connections are closed), and any error the
// serve goroutine died with before shutdown is surfaced. Idempotent:
// later calls return the first call's result.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutErr := e.srv.Shutdown(ctx)
		serveErr := <-e.done
		if errors.Is(serveErr, http.ErrServerClosed) {
			serveErr = nil
		}
		e.closeErr = serveErr
		if e.closeErr == nil {
			e.closeErr = shutErr
		}
	})
	return e.closeErr
}
