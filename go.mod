module isolevel

go 1.22
