package isolevel

import (
	"isolevel/internal/anomalies"
	"isolevel/internal/ansi"
	"isolevel/internal/data"
	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/exerciser"
	"isolevel/internal/history"
	"isolevel/internal/lock"
	"isolevel/internal/locking"
	"isolevel/internal/matrix"
	"isolevel/internal/mv"
	"isolevel/internal/oraclerc"
	"isolevel/internal/phenomena"
	"isolevel/internal/predicate"
	"isolevel/internal/report"
	"isolevel/internal/schedule"
	"isolevel/internal/snapshot"
	"isolevel/internal/workload"
)

// --- Isolation levels ---

// Level is an isolation level (Table 2 locking levels plus the §4
// multiversion levels).
type Level = engine.Level

// Isolation levels.
const (
	Degree0           = engine.Degree0
	ReadUncommitted   = engine.ReadUncommitted
	ReadCommitted     = engine.ReadCommitted
	CursorStability   = engine.CursorStability
	RepeatableRead    = engine.RepeatableRead
	Serializable      = engine.Serializable
	SnapshotIsolation = engine.SnapshotIsolation
	ReadConsistency   = engine.ReadConsistency
)

// Levels lists every implemented isolation level.
var Levels = engine.Levels

// --- Engine contract ---

// DB is a database engine instance (one store + one concurrency-control
// scheduler).
type DB = engine.DB

// Tx is a transaction handle.
type Tx = engine.Tx

// Cursor is a SQL-style cursor (§4.1).
type Cursor = engine.Cursor

// Engine errors (errors.Is-compatible).
var (
	ErrDeadlock      = engine.ErrDeadlock
	ErrWriteConflict = engine.ErrWriteConflict
	ErrRowChanged    = engine.ErrRowChanged
	ErrNotFound      = engine.ErrNotFound
	ErrTxDone        = engine.ErrTxDone
	ErrUnsupported   = engine.ErrUnsupported
)

// NewLockingDB returns the Table 2 locking engine (Degree 0, READ
// UNCOMMITTED, READ COMMITTED, CURSOR STABILITY, REPEATABLE READ,
// SERIALIZABLE).
func NewLockingDB() *locking.DB { return locking.NewDB() }

// NewLockingDBShards returns the locking engine with an explicit
// lock-table stripe count (1 reproduces the old single-latch lock
// manager; higher counts let disjoint-key lock traffic proceed in
// parallel).
func NewLockingDBShards(shards int) *locking.DB {
	return locking.NewDB(locking.WithShards(shards))
}

// NewKeyrangeDB returns the locking engine with key-range (next-key)
// phantom prevention instead of the gated cross-stripe predicate table:
// range scans install per-stripe next-key fragments over the existing
// keys and gaps of their predicate's key range, inserts acquire their
// covering gap's exclusive lock, and no path ever takes the gate's
// exclusive side (LockStats().GateAcquires stays zero). Behaviorally
// equivalent to NewLockingDB at every Table 2 level.
func NewKeyrangeDB() *locking.DB {
	return locking.NewDB(locking.WithPhantomProtection(locking.PhantomKeyrange))
}

// NewKeyrangeDBShards is NewKeyrangeDB with an explicit stripe count.
func NewKeyrangeDBShards(shards int) *locking.DB {
	return locking.NewDB(locking.WithPhantomProtection(locking.PhantomKeyrange), locking.WithShards(shards))
}

// NewKeyrangeDBEscalated is NewKeyrangeDBShards with lock escalation: a
// scan handle reaching threshold next-key fragments in one lock stripe
// collapses them into a single coarse whole-stripe entry ([GLPT]-style
// granularity coarsening, counted in LockStats().Escalations). Blocking
// becomes strictly coarser than the exact keyrange protocol — behavioral
// equivalence with the predicate engine is traded for a bounded fragment
// population — but every Table 2 guarantee still holds.
func NewKeyrangeDBEscalated(shards, threshold int) *locking.DB {
	return locking.NewDB(
		locking.WithPhantomProtection(locking.PhantomKeyrange),
		locking.WithShards(shards),
		locking.WithEscalation(threshold),
	)
}

// NewSnapshotDB returns the §4.2 Snapshot Isolation engine
// (first-committer-wins, snapshot reads, time travel via BeginAsOf).
func NewSnapshotDB() *snapshot.DB { return snapshot.NewDB() }

// NewSnapshotDBFirstUpdaterWins returns the eager-conflict ablation of the
// Snapshot Isolation engine (conflicts surface at write time).
func NewSnapshotDBFirstUpdaterWins() *snapshot.DB {
	return snapshot.NewDB(snapshot.FirstUpdaterWins())
}

// NewSnapshotDBShards returns the Snapshot Isolation engine with an
// explicit store stripe count (1 reproduces the old single-commit-mutex
// behavior; higher counts let disjoint write sets commit in parallel).
func NewSnapshotDBShards(shards int) *snapshot.DB {
	return snapshot.NewDB(snapshot.WithShards(shards))
}

// NewOracleRCDB returns the §4.3 Oracle-style Read Consistency engine
// (statement-level snapshots, first-writer-wins write locks).
func NewOracleRCDB() *oraclerc.DB { return oraclerc.NewDB() }

// NewOracleRCDBShards returns the Read Consistency engine with an explicit
// store stripe count.
func NewOracleRCDBShards(shards int) *oraclerc.DB {
	return oraclerc.NewDB(oraclerc.WithShards(shards))
}

// NewDBFor returns a fresh engine implementing the given level.
func NewDBFor(level Level) DB { return anomalies.NewDBFor(level) }

// NewDBForShards is NewDBFor with an explicit stripe count, honored by
// every engine family (multiversion store stripes and locking-engine lock
// table stripes alike; <= 0 means the default).
func NewDBForShards(level Level, shards int) DB { return anomalies.NewDBForShards(level, shards) }

// --- Rows ---

// Key identifies a data item.
type Key = data.Key

// Row is a set of named int64 fields.
type Row = data.Row

// Tuple pairs a key with a row.
type Tuple = data.Tuple

// Scalar builds a tuple holding a single "val" field, the shape of the
// paper's x/y/z items.
func Scalar(key Key, v int64) Tuple { return Tuple{Key: key, Row: data.Scalar(v)} }

// GetVal reads the scalar value of key inside tx.
func GetVal(tx Tx, key Key) (int64, error) { return engine.GetVal(tx, key) }

// PutVal writes a scalar row inside tx.
func PutVal(tx Tx, key Key, v int64) error { return engine.PutVal(tx, key, v) }

// --- Predicates ---

// Predicate is a <search condition> over rows.
type Predicate = predicate.P

// ParsePredicate parses "active == 1 && hours < 8" style conditions.
func ParsePredicate(src string) (Predicate, error) { return predicate.Parse(src) }

// MustPredicate is ParsePredicate that panics on error.
func MustPredicate(src string) Predicate { return predicate.MustParse(src) }

// --- Histories and phenomena ---

// History is a linear ordering of transactional actions in the paper's
// notation.
type History = history.History

// ParseHistory parses the paper's shorthand ("w1[x] r2[x] c1 a2").
func ParseHistory(src string) (History, error) { return history.Parse(src) }

// MustHistory is ParseHistory that panics on error.
func MustHistory(src string) History { return history.MustParse(src) }

// PhenomenonID names a phenomenon or anomaly (P0, P1, A1, ..., A5B).
type PhenomenonID = phenomena.ID

// Phenomena lists every matcher-backed identifier.
var Phenomena = phenomena.All

// Exhibits reports whether h contains phenomenon id.
func Exhibits(id PhenomenonID, h History) bool { return phenomena.Exhibits(id, h) }

// PhenomenaProfile returns all phenomena h exhibits.
func PhenomenaProfile(h History) map[PhenomenonID]bool {
	out := map[PhenomenonID]bool{}
	for id := range phenomena.Profile(h) {
		out[id] = true
	}
	return out
}

// StreamingProfile is PhenomenaProfile computed by the incremental
// checker: one pass, per-op work bounded by live transactions rather than
// history length. Equivalent to PhenomenaProfile on well-formed histories.
func StreamingProfile(h History) map[PhenomenonID]bool { return phenomena.StreamProfile(h) }

// ConflictSerializable reports whether h's committed projection is
// conflict-serializable (acyclic dependency graph, §2.1).
func ConflictSerializable(h History) bool { return deps.Serializable(h) }

// EquivalentSerialOrder returns an equivalent serial order of committed
// transactions, or nil if h is not conflict-serializable.
func EquivalentSerialOrder(h History) []int { return deps.EquivalentSerialOrder(h) }

// AnsiLevel is a phenomenon-based isolation level acceptor (Tables 1 & 3).
type AnsiLevel = ansi.Level

// The Table 1 / Table 3 acceptors.
var (
	AnomalySerializable = ansi.AnomalySerializable
	AnsiTable1Strict    = ansi.Table1Strict
	AnsiTable1Broad     = ansi.Table1Broad
	AnsiTable3          = ansi.Table3
)

// Paper histories (§3, §4).
var (
	H1             = history.H1
	H2             = history.H2
	H3             = history.H3
	H4             = history.H4
	H5             = history.H5
	H1SI           = history.H1SI
	H1SISV         = history.H1SISV
	DirtyWriteHist = history.DirtyWrite
)

// --- Scenarios and matrix regeneration ---

// Scenario is a runnable anomaly experiment.
type Scenario = anomalies.Scenario

// Outcome is a scenario verdict.
type Outcome = anomalies.Outcome

// Scenarios returns the full Table 4 scenario catalog.
func Scenarios() []Scenario { return anomalies.Catalog() }

// RunScenario executes a scenario at a level on a fresh engine.
func RunScenario(sc Scenario, level Level) (Outcome, error) {
	out, _, err := anomalies.Run(sc, level)
	return out, err
}

// Cell is a Table 4 cell value.
type Cell = matrix.Cell

// Cell values.
const (
	NotPossible       = matrix.NotPossible
	SometimesPossible = matrix.SometimesPossible
	Possible          = matrix.Possible
)

// Table4 measures the paper's Table 4 on live engines (defaults to the
// paper's six rows).
func Table4(levels ...Level) (*matrix.Table4Result, error) { return matrix.RunTable4(levels...) }

// Table4AllLevels measures Table 4 over the paper's rows plus Degree 0 and
// Oracle Read Consistency.
func Table4AllLevels() (*matrix.Table4Result, error) {
	all := append(append([]Level{}, matrix.PaperLevels...), matrix.ExtensionLevels...)
	return matrix.RunTable4(all...)
}

// Table1 regenerates the paper's Table 1 from the phenomenon acceptors.
func Table1() *report.Table { return matrix.RunTable1() }

// Table2 regenerates Table 2 (declared lock protocol + live probes).
func Table2() (*report.Table, []string, error) { return matrix.RunTable2() }

// Table3 regenerates the repaired Table 3.
func Table3() *report.Table { return matrix.RunTable3() }

// Hierarchy is the measured Figure 2.
type Hierarchy = matrix.Hierarchy

// RemarkResult is the verification outcome of one of the paper's Remarks.
type RemarkResult = matrix.RemarkResult

// VerifyRemarks checks the paper's Remarks 1-10 against the live engines.
func VerifyRemarks() ([]RemarkResult, error) { return matrix.VerifyRemarks() }

// Figure2 computes the measured isolation hierarchy from a Table 4 run.
func Figure2(t4 *matrix.Table4Result) *Hierarchy { return matrix.BuildHierarchy(t4) }

// --- Scripted schedules ---

// Step is one action of a scripted interleaving.
type Step = schedule.Step

// ScheduleCtx is the per-transaction context handed to step closures.
type ScheduleCtx = schedule.Ctx

// ScheduleResult is the outcome of running a script.
type ScheduleResult = schedule.Result

// RunSchedule executes a scripted interleaving against db with every
// transaction at the given level.
func RunSchedule(db DB, level Level, steps []Step) (*ScheduleResult, error) {
	return schedule.Run(db, schedule.Options{Level: level}, steps)
}

// OpStep, CommitStep and AbortStep build script steps.
var (
	OpStep     = schedule.OpStep
	CommitStep = schedule.CommitStep
	AbortStep  = schedule.AbortStep
)

// --- Differential isolation fuzzing ---

// FuzzOptions configure a fuzz campaign (see internal/exerciser).
type FuzzOptions = exerciser.Options

// FuzzReport is a campaign's deterministic outcome.
type FuzzReport = exerciser.Report

// FuzzFinding is one oracle violation, with its minimized history when
// shrinking was requested.
type FuzzFinding = exerciser.Finding

// Fuzz runs a differential fuzz campaign: seeded generated schedules
// replayed on every engine family at every isolation level, recorded
// traces normalized and checked against the Table 4 oracle. Set
// FuzzOptions.Mixed for per-transaction level assignments judged by the
// per-transaction oracle.
func Fuzz(opts FuzzOptions) (*FuzzReport, error) { return exerciser.Run(opts) }

// --- Mixed isolation levels ---

// LevelAssign is a per-transaction isolation level assignment (uniform
// when PerTx is empty).
type LevelAssign = exerciser.Assign

// UniformLevels assigns every transaction the same level.
func UniformLevels(l Level) LevelAssign { return exerciser.UniformAssign(l) }

// PerTxLevels wraps an explicit per-transaction level map.
func PerTxLevels(perTx map[int]Level) LevelAssign { return exerciser.PerTxAssign(perTx) }

// ParseLevels reads the annotation form "T1=RR T2=RC ..." (the syntax of
// `isolevel check -f`'s "# levels:" lines; codes D0 RU RC CS RR SER SI
// ORC or full level names).
func ParseLevels(src string) (LevelAssign, error) { return exerciser.ParseAssign(src) }

// PhenomenonPair names the two transactions participating in a witnessed
// phenomenon, in the pattern's subscript order.
type PhenomenonPair = phenomena.Pair

// PhenomenaAttribution returns every phenomenon h exhibits together with
// the participating transaction pairs (streaming checker).
func PhenomenaAttribution(h History) map[PhenomenonID]map[PhenomenonPair]bool {
	return phenomena.StreamAttribution(h)
}

// LevelCharge is one per-transaction oracle violation: a phenomenon
// charged to a victim transaction whose own level forbids it.
type LevelCharge = exerciser.Charge

// JudgeHistory runs the per-transaction oracle over a history under a
// level assignment: every witnessed phenomenon is charged to its victim,
// and only charges the victim's own level forbids are returned. An empty
// result means the history is legal for the assignment.
func JudgeHistory(h History, assign LevelAssign) []LevelCharge {
	return exerciser.NewOracle().Charges(phenomena.StreamAttribution(h), assign.Level)
}

// --- Workloads (benchmarks) ---

// Metrics aggregates a workload run.
type Metrics = workload.Metrics

// ScanResult reports the snapshot-scan-vs-hot-writers scenario.
type ScanResult = workload.ScanResult

// Workload generators (see internal/workload).
var (
	LoadAccounts      = workload.LoadAccounts
	TransferWorkload  = workload.Transfer
	ReadersVsWriters  = workload.ReadersVsWriters
	HotspotCounter    = workload.HotspotCounter
	LongRunningUpdate = workload.LongRunningUpdater
	TotalBalance      = workload.TotalBalance
)

// Deterministic-interleaving workloads (see internal/workload/driver.go):
// barrier-synchronized sessions whose read–write overlap is guaranteed on
// any GOMAXPROCS, making contention outcomes exact instead of
// scheduler-dependent.
var (
	HotspotLockstep          = workload.HotspotCounterLockstep
	SnapshotScanVsHotWriters = workload.SnapshotScanVsHotWriters
	SkewedTransferWorkload   = workload.SkewedTransfer
	BatchIncrementWorkload   = workload.BatchIncrement
)

// Lockstep locking-engine scenarios (see internal/workload/locking.go):
// schedule-runner-driven workloads whose blocking, deadlock-victim and
// phantom-prevention outcomes are exact at every lock-table stripe count,
// on any GOMAXPROCS.
var (
	ReadLockFanInWorkload   = workload.ReadLockFanIn
	UpgradeStormWorkload    = workload.UpgradeDeadlockStorm
	PredicateVsItemWorkload = workload.PredicateVsItemMix
)

// FanInResult reports the contended read-lock fan-in scenario.
type FanInResult = workload.FanInResult

// PredItemResult reports the predicate-vs-item writer mix scenario.
type PredItemResult = workload.PredItemResult

// LockStats is the lock manager's counter snapshot (grants, waits,
// deadlocks, upgrades, per-stripe contention).
type LockStats = lock.Stats

// Barrier is the reusable rendezvous behind the deterministic driver.
type Barrier = schedule.Barrier

// NewBarrier returns a barrier for n parties.
var NewBarrier = schedule.NewBarrier

// SnapshotTS re-exports the multiversion timestamp type for AsOf queries.
type SnapshotTS = mv.TS
