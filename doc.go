// Package isolevel is a from-scratch Go reproduction of Berenson,
// Bernstein, Gray, Melton, O'Neil & O'Neil, "A Critique of ANSI SQL
// Isolation Levels" (SIGMOD 1995) — the paper that exposed the ambiguities
// of the ANSI SQL-92 isolation phenomena, introduced Dirty Write (P0),
// Lost Update (P4/P4C), Read Skew (A5A) and Write Skew (A5B), and defined
// Snapshot Isolation.
//
// The package provides:
//
//   - Live engines for every isolation type the paper characterizes: the
//     Table 2 locking scheduler (Degree 0 through SERIALIZABLE, including
//     Cursor Stability), the §4.2 Snapshot Isolation engine with
//     First-Committer-Wins, and the §4.3 Oracle-style Read Consistency
//     engine.
//   - The paper's history formalism: parse "w1[x] r2[x] c1 a2", detect
//     every phenomenon (P0–P4C, A1–A5B), build dependency graphs, test
//     conflict-serializability, and map Snapshot Isolation executions to
//     single-valued histories.
//   - A deterministic goroutine-per-transaction schedule runner that
//     executes the paper's interleavings against the live engines.
//   - Regenerators for every evaluation artifact: Tables 1–4 and the
//     Figure 2 isolation hierarchy, diffed against the published values.
//   - Concurrent workload generators plus a deterministic lockstep driver
//     (barrier-synchronized sessions) that forces read–write overlap on
//     any GOMAXPROCS, so first-committer-wins aborts and statement-level
//     read skew are exact, reproducible outcomes rather than scheduler
//     luck.
//
// All three engine families share one stripe-count knob. The
// multiversion engines commit through a striped path: the store shards
// version chains and commit latches across stripes, so transactions with
// disjoint write sets validate and install in parallel instead of
// queueing on a global commit mutex, and snapshots start at the
// timestamp oracle's installed watermark, which keeps them stable while
// commits race. The locking engine stripes its lock manager the same
// way: per-key-stripe lock tables with their own latches and wait
// queues, a cross-stripe predicate-lock table behind a shared-exclusive
// gate, and a standalone waits-for deadlock detector spanning all
// stripes. NewSnapshotDBShards / NewOracleRCDBShards / NewLockingDBShards
// / NewDBForShards set the count explicitly (default 16; 1 reproduces
// the old single-latch behavior everywhere).
//
// Quick start:
//
//	db := isolevel.NewSnapshotDB()
//	db.Load(isolevel.Scalar("x", 50), isolevel.Scalar("y", 50))
//	tx, _ := db.Begin(isolevel.SnapshotIsolation)
//	v, _ := isolevel.GetVal(tx, "x")
//	_ = isolevel.PutVal(tx, "y", v+40)
//	err := tx.Commit() // may be ErrWriteConflict: first-committer-wins
//
// Beyond the hand-written scenarios, the differential isolation fuzzer
// (internal/exerciser, `isolevel fuzz`) manufactures them: seeded random
// schedules replay deterministically against every engine family at every
// level, the recorded traces are normalized to the paper's single-valued
// form (locking traces directly; the multiversion engines through the
// MV→SV mapping of §4.2, per transaction for Snapshot Isolation and per
// statement for Read Consistency), streamed through incremental
// phenomenon and dependency-graph checkers, and cross-checked against a
// Table 4 oracle; violations are shrunk to minimal histories in the
// paper's notation. The pipeline is: generate → replay (lockstep runner)
// → record (engine.Recorder + timestamped exports) → normalize (deps) →
// check (phenomena.Stream, deps.Builder) → judge (matrix-derived oracle)
// → shrink.
//
// Isolation level is a per-transaction property throughout that pipeline,
// the way the paper's Table 2 defines each *transaction's* lock protocol:
// schedule.Options assigns a level per script transaction, the streaming
// checkers attribute every witnessed phenomenon to its participating
// transaction pair, and the oracle judges per transaction — a phenomenon
// is a violation only when charged to a transaction whose own level
// forbids it (a Degree 1 writer may exhibit P1 against itself; a
// REPEATABLE READ reader must never be the dirty-read victim of a
// degree >= 1 writer). `isolevel fuzz -mixed` samples a level per
// transaction (all six locking degrees in one lock manager; SNAPSHOT
// ISOLATION and READ CONSISTENCY interleaved on the unified mv engine of
// internal/mvcc), and `isolevel check -f` accepts "# levels: T1=RR T2=RC"
// annotations to replay mixed findings.
//
// See the examples/ directory for runnable demonstrations of the paper's
// anomalies and the cmd/isolevel CLI for table regeneration.
package isolevel
