// Package isolevel is a from-scratch Go reproduction of Berenson,
// Bernstein, Gray, Melton, O'Neil & O'Neil, "A Critique of ANSI SQL
// Isolation Levels" (SIGMOD 1995) — the paper that exposed the ambiguities
// of the ANSI SQL-92 isolation phenomena, introduced Dirty Write (P0),
// Lost Update (P4/P4C), Read Skew (A5A) and Write Skew (A5B), and defined
// Snapshot Isolation.
//
// The package provides:
//
//   - Live engines for every isolation type the paper characterizes: the
//     Table 2 locking scheduler (Degree 0 through SERIALIZABLE, including
//     Cursor Stability), the §4.2 Snapshot Isolation engine with
//     First-Committer-Wins, and the §4.3 Oracle-style Read Consistency
//     engine.
//   - The paper's history formalism: parse "w1[x] r2[x] c1 a2", detect
//     every phenomenon (P0–P4C, A1–A5B), build dependency graphs, test
//     conflict-serializability, and map Snapshot Isolation executions to
//     single-valued histories.
//   - A deterministic goroutine-per-transaction schedule runner that
//     executes the paper's interleavings against the live engines.
//   - Regenerators for every evaluation artifact: Tables 1–4 and the
//     Figure 2 isolation hierarchy, diffed against the published values.
//   - Concurrent workload generators plus a deterministic lockstep driver
//     (barrier-synchronized sessions) that forces read–write overlap on
//     any GOMAXPROCS, so first-committer-wins aborts and statement-level
//     read skew are exact, reproducible outcomes rather than scheduler
//     luck.
//
// All three engine families share one stripe-count knob. The
// multiversion engines commit through a striped path: the store shards
// version chains and commit latches across stripes, so transactions with
// disjoint write sets validate and install in parallel instead of
// queueing on a global commit mutex, and snapshots start at the
// timestamp oracle's installed watermark, which keeps them stable while
// commits race. The locking engine stripes its lock manager the same
// way: per-key-stripe lock tables with their own latches and wait
// queues, a cross-stripe predicate-lock table behind a shared-exclusive
// gate, and a standalone waits-for deadlock detector spanning all
// stripes. NewSnapshotDBShards / NewOracleRCDBShards / NewLockingDBShards
// / NewDBForShards set the count explicitly (default 16; 1 reproduces
// the old single-latch behavior everywhere).
//
// Quick start:
//
//	db := isolevel.NewSnapshotDB()
//	db.Load(isolevel.Scalar("x", 50), isolevel.Scalar("y", 50))
//	tx, _ := db.Begin(isolevel.SnapshotIsolation)
//	v, _ := isolevel.GetVal(tx, "x")
//	_ = isolevel.PutVal(tx, "y", v+40)
//	err := tx.Commit() // may be ErrWriteConflict: first-committer-wins
//
// Phantom prevention on the locking engine comes in two interchangeable
// protocols. The paper's literal mechanism is the predicate table: one
// cross-stripe lock per <search condition> behind a shared-exclusive gate
// (every predicate operation quiesces the stripe set). The practical
// mechanism real schedulers use is key-range (next-key) locking
// (NewKeyrangeDB, locking.WithPhantomProtection): a range scan decomposes
// its protection into per-stripe next-key fragments — one per existing
// key in the predicate's key range, each covering its anchor key and the
// gap below it, over the ordered key index the store maintains per stripe
// — and an insert acquires its covering gap's exclusive lock, inheriting
// the fragments onto the new key. Fragment conflicts are refined by the
// same row-image rule as predicate locks, so the two protocols are
// behaviorally equivalent (the fuzzer runs both families over identical
// schedules and diffs everything), but the keyrange engine never takes
// the gate's exclusive side: disjoint-key writers keep scaling with the
// stripe count even while a SERIALIZABLE scan holds its locks.
//
// Beyond the hand-written scenarios, the differential isolation fuzzer
// (internal/exerciser, `isolevel fuzz`) manufactures them: seeded random
// schedules replay deterministically against every engine family at every
// level, the recorded traces are normalized to the paper's single-valued
// form (locking traces directly; the multiversion engines through the
// MV→SV mapping of §4.2, per transaction for Snapshot Isolation and per
// statement for Read Consistency), streamed through incremental
// phenomenon and dependency-graph checkers, and cross-checked against a
// Table 4 oracle; violations are shrunk to minimal histories in the
// paper's notation. The pipeline:
//
//	     seed ─▶ generate (exerciser.Generate: grammar over items,
//	     │       predicates, cursors, inserts/deletes/range reads
//	     │       (the -mix i/d/s weights; rows appear and vanish
//	     │       mid-history), per-tx op lists, seeded merge)
//	     ▼
//	   replay ─▶ schedule.Run: lockstep runner, one engine op at a
//	     │       time (lock-wait observer + grant parking), per-tx
//	     │       levels, on every family × level cell
//	     ▼
//	   record ─▶ engine.Recorder (conflict-ordered trace) +
//	     │       timestamped MV exports (SITx.MVTxn, RCTx.SVTrace)
//	     ▼
//	normalize ─▶ deps.MapEventsToSV: the §4.2 MV→SV mapping merges
//	     │       every transaction's event blocks into one
//	     │       single-valued history (locking traces pass through)
//	     ▼
//	    check ─▶ phenomena.StreamAttribution (P0–A5B with participant
//	     │       pairs), deps.Builder (serializability), FCW interval,
//	     │       provenance, snapshot-read value certification
//	     ▼
//	    judge ─▶ exerciser.Oracle: Table 4 rows per transaction — a
//	     │       phenomenon is a violation only when charged to a
//	     │       transaction whose own level forbids it
//	     ▼
//	   shrink ─▶ drop transactions, then ops, to a fixpoint: minimal
//	             replayable history in the paper's notation
//
// An observability sink (internal/obs) rides alongside every stage: the
// replay wires a per-run virtual-clock flight recorder into the engine
// under test, so a finding carries a deterministic event timeline
// (begin/wait/grant/upgrade/escalate/commit/abort/deadlock) next to its
// minimized history, and the bench CLI wires the same hooks to wall-clock
// latency histograms, a deadlock flight dump, and a /metrics + pprof
// endpoint (-http). Hooks are nil-safe: with no sink attached the hot
// paths pay one pointer check and zero allocations.
//
// Isolation level is a per-transaction property throughout that pipeline,
// the way the paper's Table 2 defines each *transaction's* lock protocol:
// schedule.Options assigns a level per script transaction, the streaming
// checkers attribute every witnessed phenomenon to its participating
// transaction pair, and the oracle judges per transaction — a phenomenon
// is a violation only when charged to a transaction whose own level
// forbids it (a Degree 1 writer may exhibit P1 against itself; a
// REPEATABLE READ reader must never be the dirty-read victim of a
// degree >= 1 writer). `isolevel fuzz -mixed` samples a level per
// transaction (all six locking degrees in one lock manager; SNAPSHOT
// ISOLATION and READ CONSISTENCY interleaved on the unified mv engine of
// internal/mvcc), and `isolevel check -f` accepts "# levels: T1=RR T2=RC"
// annotations to replay mixed findings.
//
// Every property above leans on the replay being deterministic, so the
// repo lints for determinism statically: internal/analysis is a
// self-hosted static-analysis suite (cmd/isolint, run by `make lint` and
// CI ahead of the tests) that flags map-range iteration-order leaks and
// unseeded randomness in the deterministic packages, checks the lock
// manager's declared latch hierarchy, lock/unlock pairing on every
// control-flow path, and the install-then-refresh waits-for discipline.
// The bug classes it encodes are exactly the ones this codebase has had
// to fix by hand in review.
//
// See the examples/ directory for runnable demonstrations of the paper's
// anomalies and the cmd/isolevel CLI for table regeneration.
package isolevel
